//===- PairExtensionTest.cpp - the §1 tuple extension, end to end -----------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// The paper notes its approach "could be applied to other data
// structures such as tuples". These tests cover the product-type
// extension at every layer: parsing, typing, evaluation, and the
// abstract escape semantics (with precise component projection and the
// Definition-2 analog of worst-case functions over pairs).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/AstPrinter.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class PairExtensionTest : public ::testing::Test {
protected:
  Frontend FE;
  std::unique_ptr<EscapeAnalyzer> Analyzer;

  bool setup(const std::string &Source,
             TypeInferenceMode Mode = TypeInferenceMode::Monomorphic) {
    if (!FE.parseAndType(Source, Mode))
      return false;
    Analyzer = std::make_unique<EscapeAnalyzer>(FE.Ast, *FE.Typed, FE.Diags);
    return true;
  }

  BasicEscape global(const char *Fn, unsigned OneBased) {
    auto PE = Analyzer->globalEscape(FE.Ast.intern(Fn), OneBased - 1);
    EXPECT_TRUE(PE.has_value());
    return PE ? PE->Escape : BasicEscape::none();
  }

  std::optional<RtValue> run() {
    Interp = std::make_unique<Interpreter>(FE.Ast, *FE.Typed, nullptr,
                                           FE.Diags, Interpreter::Options());
    return Interp->run();
  }

  std::unique_ptr<Interpreter> Interp;
};

//===----------------------------------------------------------------------===//
// Front end.
//===----------------------------------------------------------------------===//

TEST_F(PairExtensionTest, TupleSyntaxParsesAndPrints) {
  ASSERT_TRUE(FE.parse("(1, true)")) << FE.diagText();
  PrintOptions PO;
  PO.Multiline = false;
  EXPECT_EQ(printExpr(FE.Ast, FE.Root, PO), "(1, true)");
}

TEST_F(PairExtensionTest, TriplesNestRight) {
  ASSERT_TRUE(FE.parseAndType("fst (snd (1, (2, 3)))")) << FE.diagText();
  EXPECT_EQ(typeName(FE.Typed->typeOf(FE.Root)), "int");
}

TEST_F(PairExtensionTest, PairTypes) {
  ASSERT_TRUE(FE.parseAndType("(1, [true])")) << FE.diagText();
  EXPECT_EQ(typeName(FE.Typed->typeOf(FE.Root)), "int * bool list");
  Frontend FE2;
  ASSERT_TRUE(FE2.parseAndType("[(1, 2)]")) << FE2.diagText();
  EXPECT_EQ(typeName(FE2.Typed->typeOf(FE2.Root)), "(int * int) list");
}

TEST_F(PairExtensionTest, PairsAreSpineless) {
  TypeContext TC;
  EXPECT_EQ(spineCount(TC.getPair(TC.getList(TC.getInt()), TC.getInt())),
            0u);
}

TEST_F(PairExtensionTest, ProjectionTypeErrorsCaught) {
  Frontend FE2;
  EXPECT_FALSE(FE2.parseAndType("fst [1]"));
  EXPECT_TRUE(FE2.Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Runtime.
//===----------------------------------------------------------------------===//

TEST_F(PairExtensionTest, PairsEvaluateAndRender) {
  ASSERT_TRUE(setup("(1 + 1, [2, 3])")) << FE.diagText();
  auto V = run();
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(Interp->render(*V), "(2, [2, 3])");
}

TEST_F(PairExtensionTest, ProjectionsEvaluate) {
  ASSERT_TRUE(setup("fst (40, 1) + snd (1, 2)")) << FE.diagText();
  auto V = run();
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 42);
}

TEST_F(PairExtensionTest, PairsAreGarbageCollected) {
  const char *Source = R"(
letrec churn i = if i = 0 then 0
                 else churn (i - snd (0, 1))
in churn 100
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  Interpreter::Options Opts;
  Opts.HeapCapacity = 16;
  Opts.AllowHeapGrowth = false;
  Interp = std::make_unique<Interpreter>(FE.Ast, *FE.Typed, nullptr, FE.Diags,
                                         Opts);
  auto V = Interp->run();
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_GE(Interp->stats().GcRuns, 1u);
}

TEST_F(PairExtensionTest, SplitWithPairsComputesCorrectly) {
  // A natural rewrite of the paper's split: return (lo, hi) instead of a
  // two-spine list.
  const char *Source = R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h = if (null x) then (l, h)
                  else if (car x) <= p
                       then split p (cdr x) (cons (car x) l) h
                       else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (fst (split (car x) (cdr x) nil nil)))
                     (cons (car x)
                           (ps (snd (split (car x) (cdr x) nil nil))))
in ps [5, 2, 7, 1, 3, 4]
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  auto V = run();
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(Interpreter::toIntVector(*V),
            (std::vector<int64_t>{1, 2, 3, 4, 5, 7}));
}

//===----------------------------------------------------------------------===//
// Escape semantics.
//===----------------------------------------------------------------------===//

TEST_F(PairExtensionTest, ComponentsProjectPrecisely) {
  // keepFst pairs x with a fresh list and takes fst: only x escapes;
  // dropSnd does the same but keeps the fresh list: x does not escape.
  const char *Source = R"(
letrec
  keepFst x = fst (x, [1]);
  dropX x = snd (x, [1])
in (keepFst [1], dropX [2])
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  EXPECT_EQ(global("keepFst", 1), BasicEscape::contained(1));
  EXPECT_EQ(global("dropX", 1), BasicEscape::none());
}

TEST_F(PairExtensionTest, PairValueContainsBothComponents) {
  // Returning the pair itself releases x (its ground is joined in).
  ASSERT_TRUE(setup("letrec mk x = (x, 0) in mk [1]")) << FE.diagText();
  EXPECT_EQ(global("mk", 1), BasicEscape::contained(1));
}

TEST_F(PairExtensionTest, SplitWithPairsAnalyzesLikeThePaper) {
  const char *Source = R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h = if (null x) then (l, h)
                  else if (car x) <= p
                       then split p (cdr x) (cons (car x) l) h
                       else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (fst (split (car x) (cdr x) nil nil)))
                     (cons (car x)
                           (ps (snd (split (car x) (cdr x) nil nil))))
in ps [5, 2, 7, 1, 3, 4]
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  // Same verdicts as the list-encoded version (A.1): the pivot does not
  // escape split; x's top spine does not; l and h escape wholesale; and
  // ps protects its argument's top spine.
  EXPECT_EQ(global("split", 1), BasicEscape::none());
  EXPECT_EQ(global("split", 2), BasicEscape::contained(0));
  EXPECT_EQ(global("split", 3), BasicEscape::contained(1));
  EXPECT_EQ(global("split", 4), BasicEscape::contained(1));
  EXPECT_EQ(global("ps", 1), BasicEscape::contained(0));
}

TEST_F(PairExtensionTest, WorstCaseReachesFunctionsInsidePairs) {
  // g returns a pair holding a closure that captures x; an unknown
  // consumer may project and apply it, releasing x. The worst-case
  // machinery must find the closure inside the pair.
  const char *Source = R"(
letrec
  g x = (0, lambda(u). x);
  use h = (snd (h [1])) 0
in use g
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  // In use, h is unknown (worst case): h's result pair may contain a
  // function releasing its argument. use's parameter is a function: no
  // list verdicts to check here — but g itself clearly releases x.
  EXPECT_EQ(global("g", 1), BasicEscape::contained(1));
}

TEST_F(PairExtensionTest, PairOfListsInWorstCasePosition) {
  // f passes its list to an unknown function returning int: the W value
  // releases the ground. Pairs in the argument type must not confuse it.
  const char *Source = R"(
letrec f g x = g (x, x)
in f (lambda(p). suml (fst p))
     [1, 2]
)";
  // suml is not defined here; inline a lambda instead.
  const char *Fixed = R"(
letrec f g x = g (x, x)
in f (lambda(p). if (null (fst p)) then 0 else car (fst p)) [1, 2]
)";
  (void)Source;
  ASSERT_TRUE(setup(Fixed)) << FE.diagText();
  // Worst case: g may release the pair containing x entirely.
  EXPECT_EQ(global("f", 2), BasicEscape::contained(1));
}

} // namespace

//===- PaperExamplesTest.cpp - Appendix A and §1 expectations --------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// These tests pin the analysis to the exact results worked out in the
// paper: the global escape table of Appendix A.1 and the §1 map/pair
// properties.
//
//===----------------------------------------------------------------------===//

#include "escape/EscapeAnalyzer.h"

#include "TestUtil.h"
#include "lang/AstUtils.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class PaperExamplesTest : public ::testing::Test {
protected:
  Frontend FE;

  EscapeAnalyzer makeAnalyzer() {
    return EscapeAnalyzer(FE.Ast, *FE.Typed, FE.Diags);
  }

  ParamEscape global(EscapeAnalyzer &A, const char *Fn, unsigned OneBased) {
    auto Result = A.globalEscape(FE.Ast.intern(Fn), OneBased - 1);
    EXPECT_TRUE(Result.has_value()) << "no such function/param: " << Fn;
    return *Result;
  }
};

//===----------------------------------------------------------------------===//
// Appendix A.1: the global escape table for partition sort.
//===----------------------------------------------------------------------===//

TEST_F(PaperExamplesTest, AppendGlobalEscape) {
  ASSERT_TRUE(FE.parseAndType(partitionSortSource())) << FE.diagText();
  EscapeAnalyzer A = makeAnalyzer();

  // G(APPEND, 1) = <1,0>: all but the top spine of x escapes.
  ParamEscape X = global(A, "append", 1);
  EXPECT_EQ(X.Escape, BasicEscape::contained(0)) << X.Escape.str();
  EXPECT_EQ(X.ParamSpines, 1u);
  EXPECT_EQ(X.protectedTopSpines(), 1u);

  // G(APPEND, 2) = <1,1>: all of y escapes.
  ParamEscape Y = global(A, "append", 2);
  EXPECT_EQ(Y.Escape, BasicEscape::contained(1)) << Y.Escape.str();
  EXPECT_EQ(Y.protectedTopSpines(), 0u);
}

TEST_F(PaperExamplesTest, SplitGlobalEscape) {
  ASSERT_TRUE(FE.parseAndType(partitionSortSource())) << FE.diagText();
  EscapeAnalyzer A = makeAnalyzer();

  // G(SPLIT, 1) = <0,0>: the pivot p does not escape.
  EXPECT_EQ(global(A, "split", 1).Escape, BasicEscape::none());
  // G(SPLIT, 2) = <1,0>: all but the top spine of x escapes.
  EXPECT_EQ(global(A, "split", 2).Escape, BasicEscape::contained(0));
  // G(SPLIT, 3) = G(SPLIT, 4) = <1,1>: l and h escape entirely.
  EXPECT_EQ(global(A, "split", 3).Escape, BasicEscape::contained(1));
  EXPECT_EQ(global(A, "split", 4).Escape, BasicEscape::contained(1));
}

TEST_F(PaperExamplesTest, PartitionSortGlobalEscape) {
  ASSERT_TRUE(FE.parseAndType(partitionSortSource())) << FE.diagText();
  EscapeAnalyzer A = makeAnalyzer();

  // G(PS, 1) = <1,0>: elements escape, the top spine does not.
  ParamEscape X = global(A, "ps", 1);
  EXPECT_EQ(X.Escape, BasicEscape::contained(0)) << X.Escape.str();
  EXPECT_EQ(X.protectedTopSpines(), 1u);
}

TEST_F(PaperExamplesTest, FixpointConvergesQuickly) {
  ASSERT_TRUE(FE.parseAndType(partitionSortSource())) << FE.diagText();
  EscapeAnalyzer A = makeAnalyzer();
  (void)global(A, "ps", 1);
  // The appendix shows convergence at the second iterate; allow a little
  // slack for the whole-program evaluation strategy.
  EXPECT_LE(A.lastRounds(), 6u);
  EXPECT_FALSE(A.hitIterationLimit());
}

//===----------------------------------------------------------------------===//
// §1: the pair/map example. Three properties are claimed:
//  1. The top spine of pair's parameter does not escape (only elements).
//  2. The top spine of map's parameter l does not escape.
//  3. In (map pair [[1,2],[3,4],[5,6]]), the top TWO spines of the second
//     argument do not escape.
//===----------------------------------------------------------------------===//

TEST_F(PaperExamplesTest, PairTopSpineDoesNotEscape) {
  ASSERT_TRUE(FE.parseAndType(mapPairSource())) << FE.diagText();
  EscapeAnalyzer A = makeAnalyzer();
  ParamEscape X = global(A, "pair", 1);
  // pair : int list -> int list here (simplest instance); elements
  // escape but the spine does not: <1,0>.
  EXPECT_EQ(X.Escape, BasicEscape::contained(0)) << X.Escape.str();
  EXPECT_GE(X.protectedTopSpines(), 1u);
}

TEST_F(PaperExamplesTest, MapSecondParamTopSpineDoesNotEscape) {
  ASSERT_TRUE(FE.parseAndType(mapPairSource())) << FE.diagText();
  EscapeAnalyzer A = makeAnalyzer();
  ParamEscape L = global(A, "map", 2);
  EXPECT_TRUE(L.protectedTopSpines() >= 1)
      << "map's list spine must not escape: " << L.Escape.str();
}

TEST_F(PaperExamplesTest, MapPairCallSiteLocalEscape) {
  // §1 property 3 quantifies spines of the *use instance* (the second
  // argument has two spines), so the analysis must see the body of map at
  // that instance: car^2 on l. That is the paper's base (monomorphic)
  // typing discipline of §3.1. In polymorphic mode the analysis sees the
  // simplest instance (car^1) per Theorem 1 and the local result is
  // conservative.
  ASSERT_TRUE(FE.parseAndType(mapPairSource(),
                              TypeInferenceMode::Monomorphic))
      << FE.diagText();
  EscapeAnalyzer A = makeAnalyzer();
  // The program body is the call site (map pair [[...],...]).
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  const Expr *Call = Letrec->body();
  auto L = A.localEscape(Call, 1);
  ASSERT_TRUE(L.has_value());
  // The second argument has 2 spines; the paper claims the top two spines
  // do not escape, i.e. the local test yields <1,0>.
  EXPECT_EQ(L->ParamSpines, 2u);
  EXPECT_EQ(L->Escape, BasicEscape::contained(0)) << L->Escape.str();
  EXPECT_EQ(L->protectedTopSpines(), 2u);
}

//===----------------------------------------------------------------------===//
// Naive reverse: rev's argument spine must not escape (enables REV').
//===----------------------------------------------------------------------===//

TEST_F(PaperExamplesTest, ReverseSpineDoesNotEscape) {
  ASSERT_TRUE(FE.parseAndType(reverseSource())) << FE.diagText();
  EscapeAnalyzer A = makeAnalyzer();
  ParamEscape L = global(A, "rev", 1);
  EXPECT_EQ(L.Escape, BasicEscape::contained(0)) << L.Escape.str();
  EXPECT_EQ(L.protectedTopSpines(), 1u);
}

} // namespace

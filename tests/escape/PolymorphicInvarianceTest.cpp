//===- PolymorphicInvarianceTest.cpp - Theorem 1 ------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Theorem 1: for any two monomorphic instances f', f'' of a polymorphic
// function, either both global tests yield <0,0>, or s' − k' = s'' − k''.
// These tests instantiate library functions at element depths 1..4 (by
// driving them with suitably nested literals under monomorphic typing)
// and assert the invariant; the polymorphic-mode result must agree with
// the simplest instance.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "escape/EscapeAnalyzer.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

/// A literal of list-nesting depth \p Depth (>= 1).
std::string nested(unsigned Depth) {
  if (Depth == 1)
    return "[1, 2]";
  // Built by += rather than operator+ chains: GCC 12's -Wrestrict
  // misfires on the temporaries at -O2.
  std::string S = "[";
  S += nested(Depth - 1);
  S += "]";
  return S;
}

struct Verdict {
  bool Escapes = false;
  unsigned Spines = 0;
  unsigned Protected = 0;
};

Verdict analyzeAt(const std::string &Source, const char *Fn, unsigned Param,
                  TypeInferenceMode Mode) {
  Frontend FE;
  EXPECT_TRUE(FE.parseAndType(Source, Mode)) << Source << FE.diagText();
  EscapeAnalyzer Analyzer(FE.Ast, *FE.Typed, FE.Diags);
  auto PE = Analyzer.globalEscape(FE.Ast.intern(Fn), Param);
  EXPECT_TRUE(PE.has_value());
  Verdict V;
  if (PE) {
    V.Escapes = PE->escapes();
    V.Spines = PE->ParamSpines;
    V.Protected = PE->protectedTopSpines();
  }
  return V;
}

struct Subject {
  const char *Name;
  const char *Fn;
  unsigned Param; // 0-based
  const char *Prelude;
  const char *Drive; // printf-ish: %L replaced with the literal
};

std::string driveAt(const Subject &S, unsigned Depth) {
  std::string Out = std::string("letrec ") + S.Prelude + " in ";
  std::string Drive = S.Drive;
  size_t Pos;
  while ((Pos = Drive.find("%L")) != std::string::npos)
    Drive.replace(Pos, 2, nested(Depth));
  return Out + Drive;
}

class InvarianceTest : public ::testing::TestWithParam<Subject> {};

TEST_P(InvarianceTest, ProtectedSpinesInvariantAcrossInstances) {
  // Theorem 1, precisely: either G = <0,0> at *every* instance, or
  // G = <1,k> at every instance with s − k constant. (For non-escaping
  // parameters the protected count is the full s, which of course grows
  // with the instance — the invariant clause applies to the <1,k> case.)
  const Subject &S = GetParam();
  std::optional<unsigned> Expected;
  std::optional<bool> ExpectedEscapes;
  for (unsigned Depth = 1; Depth <= 4; ++Depth) {
    Verdict V = analyzeAt(driveAt(S, Depth), S.Fn, S.Param,
                          TypeInferenceMode::Monomorphic);
    if (!Expected) {
      Expected = V.Protected;
      ExpectedEscapes = V.Escapes;
      continue;
    }
    EXPECT_EQ(V.Escapes, *ExpectedEscapes) << S.Name << " depth " << Depth;
    if (*ExpectedEscapes) {
      EXPECT_EQ(V.Protected, *Expected)
          << S.Name << " instance s=" << V.Spines
          << " breaks Theorem 1's invariant";
    }
  }
  // Polymorphic mode analyzes the simplest instance: same verdict class,
  // same invariant quantity when escaping.
  Verdict Poly = analyzeAt(driveAt(S, 1), S.Fn, S.Param,
                           TypeInferenceMode::Polymorphic);
  EXPECT_EQ(Poly.Escapes, *ExpectedEscapes) << S.Name;
  if (*ExpectedEscapes) {
    EXPECT_EQ(Poly.Protected, *Expected) << S.Name << " (polymorphic mode)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Functions, InvarianceTest,
    ::testing::Values(
        Subject{"AppendX", "append", 0,
                "append x y = if (null x) then y "
                "else cons (car x) (append (cdr x) y)",
                "append %L %L"},
        Subject{"AppendY", "append", 1,
                "append x y = if (null x) then y "
                "else cons (car x) (append (cdr x) y)",
                "append %L %L"},
        Subject{"Rev", "rev", 0,
                "append x y = if (null x) then y "
                "else cons (car x) (append (cdr x) y); "
                "rev l = if (null l) then nil "
                "else append (rev (cdr l)) (cons (car l) nil)",
                "rev %L"},
        Subject{"MapL", "map", 1,
                "map f l = if (null l) then nil "
                "else cons (f (car l)) (map f (cdr l))",
                "map (lambda(e). e) %L"},
        Subject{"Length", "len", 0,
                "len l = if (null l) then 0 else 1 + len (cdr l)",
                "len %L"},
        Subject{"TailTwice", "tt", 0,
                "tt l = if (null l) then nil "
                "else if (null (cdr l)) then nil else cdr (cdr l)",
                "tt %L"}),
    [](const auto &Info) { return std::string(Info.param.Name); });

} // namespace

//===- WholeObjectBaselineTest.cpp - the ESOP'90 baseline mode ---------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Pipeline.h"
#include "escape/EscapeAnalyzer.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class WholeObjectTest : public ::testing::Test {
protected:
  Frontend FE;
  std::unique_ptr<EscapeAnalyzer> Analyzer;

  bool setup(const std::string &Source) {
    if (!FE.parseAndType(Source))
      return false;
    Analyzer = std::make_unique<EscapeAnalyzer>(
        FE.Ast, *FE.Typed, FE.Diags, 512, EscapeAnalysisMode::WholeObject);
    return true;
  }

  ParamEscape global(const char *Fn, unsigned OneBased) {
    auto PE = Analyzer->globalEscape(FE.Ast.intern(Fn), OneBased - 1);
    EXPECT_TRUE(PE.has_value());
    return *PE;
  }
};

TEST_F(WholeObjectTest, ElementsEscapingMeansWholeListEscapes) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  // Spine-aware: G(append,1) = <1,0>, top spine protected. Whole-object:
  // the parameter is indivisible, so it just escapes (no protection).
  ParamEscape X = global("append", 1);
  EXPECT_TRUE(X.escapes());
  EXPECT_EQ(X.protectedTopSpines(), 0u);
  EXPECT_EQ(X.ParamSpines, 1u) << "verdict maps back to real structure";
  EXPECT_EQ(X.escapingSpines(), 1u) << "all-or-nothing";
  ParamEscape PS = global("ps", 1);
  EXPECT_TRUE(PS.escapes());
  EXPECT_EQ(PS.protectedTopSpines(), 0u);
}

TEST_F(WholeObjectTest, TrulyPrivateParametersStillDetected) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  // split's pivot never escapes under either analysis.
  EXPECT_FALSE(global("split", 1).escapes());
  // length-style consumers keep their list private even whole-object.
  Frontend FE2;
  ASSERT_TRUE(FE2.parseAndType(
      "letrec len l = if (null l) then 0 else 1 + len (cdr l) in len [1]"));
  EscapeAnalyzer A2(FE2.Ast, *FE2.Typed, FE2.Diags, 512,
                    EscapeAnalysisMode::WholeObject);
  auto PE = A2.globalEscape(FE2.Ast.intern("len"), 0);
  ASSERT_TRUE(PE.has_value());
  EXPECT_FALSE(PE->escapes());
}

TEST_F(WholeObjectTest, BaselineIsCoarserNeverFiner) {
  // On every parameter of the partition sort program: whole-object
  // "protected spines" (0 or all) never exceeds the spine-aware count.
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  EscapeAnalyzer Precise(FE.Ast, *FE.Typed, FE.Diags);
  ProgramEscapeReport Coarse = Analyzer->analyzeProgram();
  ProgramEscapeReport Fine = Precise.analyzeProgram();
  for (size_t F = 0; F != Coarse.Functions.size(); ++F)
    for (size_t P = 0; P != Coarse.Functions[F].Params.size(); ++P) {
      const ParamEscape &CP = Coarse.Functions[F].Params[P];
      const ParamEscape &FP = Fine.Functions[F].Params[P];
      // If the baseline says "does not escape", the precise analysis
      // must agree (same abstract semantics, only grading differs).
      if (!CP.escapes()) {
        EXPECT_FALSE(FP.escapes());
      }
    }
}

TEST_F(WholeObjectTest, PipelineProducesNoReuseOnSort) {
  PipelineOptions Options;
  Options.Optimize.Analysis = EscapeAnalysisMode::WholeObject;
  PipelineResult R = runPipeline(partitionSortSource(), Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  // The baseline licenses no spine reuse on partition sort...
  EXPECT_EQ(R.Stats.DconsReuses, 0u);
  EXPECT_TRUE(R.Optimized->Reuse.Versions.empty());
  // ...and still computes the right answer.
  EXPECT_EQ(R.RenderedValue, "[1, 2, 3, 4, 5, 7]");
}

TEST_F(WholeObjectTest, BaselineStillLicensesFullyPrivateArgs) {
  // A consumer that never releases its list: even the baseline can stack
  // allocate the literal.
  PipelineOptions Options;
  Options.Optimize.Analysis = EscapeAnalysisMode::WholeObject;
  PipelineResult R = runPipeline(
      "letrec suml l = if (null l) then 0 else car l + suml (cdr l) "
      "in suml [1, 2, 3]",
      Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "6");
  EXPECT_EQ(R.Stats.StackCellsAllocated, 3u);
}

} // namespace

//===- WorstCaseTest.cpp - W^τ (Definition 2) behaviour ----------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Direct tests of the worst-case escape functions: atom construction per
// type shape and the argument-ground accumulation of Definition 2,
// exercised through the analyzer on crafted higher-order programs.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "escape/EscapeAnalyzer.h"
#include "escape/EscapeValue.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

//===----------------------------------------------------------------------===//
// Atom construction by type shape.
//===----------------------------------------------------------------------===//

TEST(WorstAtomsTest, GroundTypesHaveNoAtoms) {
  ValueStore VS;
  TypeContext TC;
  for (const Type *T :
       {static_cast<const Type *>(TC.getInt()),
        static_cast<const Type *>(TC.getBool()),
        static_cast<const Type *>(TC.getList(TC.getInt())),
        static_cast<const Type *>(
            TC.getList(TC.getList(TC.getInt())))}) {
    std::vector<FnAtomId> Atoms;
    VS.collectWorstAtoms(T, BasicEscape::none(), Atoms);
    EXPECT_TRUE(Atoms.empty()) << typeName(T);
  }
}

TEST(WorstAtomsTest, FunctionCoreYieldsOneAtom) {
  ValueStore VS;
  TypeContext TC;
  const Type *Fn = TC.getFun(TC.getInt(), TC.getInt());
  // τ, τ list, τ list list all strip to the same W (Definition 2).
  std::vector<FnAtomId> A1, A2, A3;
  VS.collectWorstAtoms(Fn, BasicEscape::none(), A1);
  VS.collectWorstAtoms(TC.getList(Fn), BasicEscape::none(), A2);
  VS.collectWorstAtoms(TC.getList(TC.getList(Fn)), BasicEscape::none(), A3);
  ASSERT_EQ(A1.size(), 1u);
  EXPECT_EQ(A1, A2);
  EXPECT_EQ(A1, A3);
}

TEST(WorstAtomsTest, PairsContributeBothComponents) {
  ValueStore VS;
  TypeContext TC;
  const Type *F1 = TC.getFun(TC.getInt(), TC.getInt());
  const Type *F2 = TC.getFun(TC.getBool(), TC.getBool());
  std::vector<FnAtomId> Atoms;
  VS.collectWorstAtoms(TC.getPair(F1, TC.getPair(TC.getInt(), F2)),
                       BasicEscape::none(), Atoms);
  EXPECT_EQ(Atoms.size(), 2u) << "one Worst atom per function component";
}

//===----------------------------------------------------------------------===//
// Definition 2 through the analyzer: W accumulates argument grounds.
//===----------------------------------------------------------------------===//

class WorstCaseAnalysisTest : public ::testing::Test {
protected:
  Frontend FE;
  std::unique_ptr<EscapeAnalyzer> Analyzer;

  BasicEscape global(const std::string &Source, const char *Fn,
                     unsigned OneBased) {
    EXPECT_TRUE(FE.parseAndType(Source, TypeInferenceMode::Monomorphic))
        << FE.diagText();
    Analyzer = std::make_unique<EscapeAnalyzer>(FE.Ast, *FE.Typed, FE.Diags);
    auto PE = Analyzer->globalEscape(FE.Ast.intern(Fn), OneBased - 1);
    EXPECT_TRUE(PE.has_value());
    return PE ? PE->Escape : BasicEscape::none();
  }
};

TEST_F(WorstCaseAnalysisTest, LaterArgumentEscapesThroughW) {
  // W^τ = λx1.⟨x1₍₁₎, λx2.⟨x1₍₁₎ ⊔ x2₍₁₎, err⟩⟩: the second argument's
  // ground is in the final result even if only passed second.
  EXPECT_TRUE(global("letrec use f a b = f a b "
                     "in use (lambda(p q). q) [1] [2]",
                     "use", 3)
                  .isContained());
}

TEST_F(WorstCaseAnalysisTest, IntermediateApplicationCarriesAcc) {
  // Partial application of the unknown function already contains x1
  // (the intermediate pair's first component is x1's ground).
  EXPECT_TRUE(global("letrec keepPartial f x = f x "
                     "in keepPartial (lambda(a b). a) [1]",
                     "keepPartial", 2)
                  .isContained());
}

TEST_F(WorstCaseAnalysisTest, ScalarResultStillEscapesGroundWise) {
  // Even when the unknown function returns int (m exhausted), the
  // arguments were consumed by it: the int cannot CONTAIN the list, so
  // the final ground for a list-typed query is the accumulated one only
  // where the result can hold it. Here the call result is the function's
  // int: the list cannot be part of it under the exact semantics, but W
  // is deliberately conservative and reports the accumulated ground.
  EXPECT_TRUE(global("letrec use f x = f x "
                     "in use (lambda(l). 0) [1, 2]",
                     "use", 2)
                  .isContained());
}

TEST_F(WorstCaseAnalysisTest, UnusedUnknownFunctionIsHarmless) {
  // The unknown function is never applied: nothing escapes through it.
  EXPECT_FALSE(global("letrec ignore f x = x + 0 "
                      "in ignore (lambda(v). v) 1",
                      "ignore", 2)
                   .isContained());
}

} // namespace

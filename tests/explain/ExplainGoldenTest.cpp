//===- ExplainGoldenTest.cpp - blame-chain snapshots ------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Golden snapshots of `eal explain` over the Appendix A programs: the
// partition sort (APPEND/SPLIT/PS) and naive reverse. The rendered blame
// chains are the analysis's public story — which equation fired, at
// which site, citing which prior facts — so a change to them must be a
// conscious one: regenerate with
//
//   EAL_UPDATE_GOLDEN=1 ./explain_tests --gtest_filter='ExplainGolden*'
//
// and review the diff like any other source change.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Pipeline.h"
#include "explain/Explain.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace eal;
using namespace eal::test;

namespace {

std::string goldenPath(const std::string &Name, const char *Ext) {
  return std::string(EAL_SOURCE_DIR) + "/tests/explain/golden/" + Name + Ext;
}

void checkGolden(const std::string &Path, const std::string &Actual) {
  if (std::getenv("EAL_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "updated " << Path;
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (run with EAL_UPDATE_GOLDEN=1 to create)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Actual, Buf.str())
      << "blame chains drifted from " << Path
      << "; if intentional, regenerate with EAL_UPDATE_GOLDEN=1";
}

PipelineResult explain(const char *Source) {
  PipelineOptions Options;
  Options.RunExplain = true;
  Options.RunProgram = false;
  return runPipeline(Source, Options);
}

void checkProgram(const std::string &Name, const char *Source) {
  PipelineResult R = explain(Source);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_TRUE(R.Explain.has_value());
  checkGolden(goldenPath(Name, ".explain"), R.Explain->renderText(*R.SM));
}

TEST(ExplainGolden, PartitionSort) {
  // APPEND, SPLIT, and PS of Appendix A in one program: escaping returns
  // (append's second argument), protected prefixes, and reuse versions
  // all leave chains here.
  checkProgram("partition_sort", partitionSortSource());
}

TEST(ExplainGolden, Reverse) {
  checkProgram("reverse", reverseSource());
}

TEST(ExplainGolden, MapPair) {
  checkProgram("map_pair", mapPairSource());
}

TEST(ExplainGolden, PartitionSortDot) {
  PipelineResult R = explain(partitionSortSource());
  ASSERT_TRUE(R.Explain.has_value());
  checkGolden(goldenPath("partition_sort", ".dot"), R.Explain->toDot());
}

} // namespace

//===- ExplainTest.cpp - why-provenance recorder and blame chains -----------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// The recorder's frame-stack protocol and graph invariants, the site
// classifier's agreement with the allocation plan, and the pipeline-level
// report: every chain must walk from an allocation site to a terminal
// step, every fact reference must resolve, and a pipeline run without
// --explain or --check must not pay for any of it (docs/EXPLAIN.md).
//
//===----------------------------------------------------------------------===//

#include "explain/Explain.h"

#include "TestUtil.h"
#include "driver/Pipeline.h"
#include "escape/EscapeAnalyzer.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

using namespace eal;
using namespace eal::explain;
using namespace eal::test;

namespace {

//===----------------------------------------------------------------------===//
// Recorder protocol.
//===----------------------------------------------------------------------===//

TEST(ProvenanceRecorder, KeyedCreateAndLookup) {
  ProvenanceRecorder P;
  uint32_t Ns = P.allocNamespace();
  EXPECT_EQ(P.lookup(FactKind::Binding, Ns, 7), NoFact);
  uint32_t F = P.create(FactKind::Binding, Ns, 7, "append", "letrec-fix",
                        SourceLoc());
  EXPECT_EQ(P.lookup(FactKind::Binding, Ns, 7), F);
  // Same key, different namespace: independent analyses never collide.
  uint32_t Ns2 = P.allocNamespace();
  EXPECT_EQ(P.lookup(FactKind::Binding, Ns2, 7), NoFact);
  // Same key, different kind: a query and a binding can share a cache key.
  EXPECT_EQ(P.lookup(FactKind::Query, Ns, 7), NoFact);
  EXPECT_EQ(P.numFacts(), 1u);
}

TEST(ProvenanceRecorder, ReadsAccrueToInnermostOpenFact) {
  ProvenanceRecorder P;
  uint32_t A = P.fresh(FactKind::Binding, "a", "", SourceLoc());
  uint32_t B = P.fresh(FactKind::Binding, "b", "", SourceLoc());
  uint32_t C = P.fresh(FactKind::Query, "c", "", SourceLoc());

  P.read(A); // no open fact: dropped
  P.open(C);
  P.open(B);
  P.read(A);
  P.read(A); // duplicate read: one edge
  P.read(B); // self-read: dropped
  P.read(NoFact);
  P.close(B);
  P.read(B);
  P.close(C);

  EXPECT_EQ(P.fact(B).Deps, (std::vector<uint32_t>{A}));
  EXPECT_EQ(P.fact(C).Deps, (std::vector<uint32_t>{B}));
  EXPECT_TRUE(P.fact(A).Deps.empty());
  EXPECT_EQ(P.numEdges(), 2u);
}

TEST(ProvenanceRecorder, RaiseSnapshotsFrameReads) {
  ProvenanceRecorder P;
  uint32_t A = P.fresh(FactKind::Binding, "a", "", SourceLoc());
  uint32_t B = P.fresh(FactKind::Binding, "b", "", SourceLoc());
  P.open(B);
  P.read(A);
  P.raise(B, 1, "<1,0>");
  P.raise(B, 2, "<1,1>");
  P.result(B, "<1,1>");
  P.close(B);

  ASSERT_EQ(P.fact(B).Raises.size(), 2u);
  EXPECT_EQ(P.fact(B).Raises[0].Round, 1u);
  EXPECT_EQ(P.fact(B).Raises[0].Value, "<1,0>");
  EXPECT_EQ(P.fact(B).Raises[0].Deps, (std::vector<uint32_t>{A}));
  EXPECT_EQ(P.fact(B).Result, "<1,1>");
  EXPECT_EQ(P.numRaises(), 2u);
}

TEST(ProvenanceRecorder, DependGuardsSentinelAndSelf) {
  ProvenanceRecorder P;
  uint32_t A = P.fresh(FactKind::Decision, "a", "", SourceLoc());
  uint32_t B = P.fresh(FactKind::Decision, "b", "", SourceLoc());
  P.depend(A, NoFact);
  P.depend(NoFact, A);
  P.depend(A, A);
  EXPECT_EQ(P.numEdges(), 0u);
  P.depend(A, B);
  P.depend(A, B); // duplicate: one edge
  EXPECT_EQ(P.fact(A).Deps, (std::vector<uint32_t>{B}));
  EXPECT_EQ(P.numEdges(), 1u);
}

TEST(ProvenanceRecorder, MaxDepthCutsCycles) {
  ProvenanceRecorder P;
  EXPECT_EQ(P.maxDepth(), 0u);
  uint32_t A = P.fresh(FactKind::Binding, "a", "", SourceLoc());
  EXPECT_EQ(P.maxDepth(), 1u);
  uint32_t B = P.fresh(FactKind::Binding, "b", "", SourceLoc());
  uint32_t C = P.fresh(FactKind::Binding, "c", "", SourceLoc());
  P.depend(C, B);
  P.depend(B, A);
  EXPECT_EQ(P.maxDepth(), 3u);
  // Mutually recursive bindings produce a cycle; the back edge must not
  // loop the depth computation.
  P.depend(A, C);
  EXPECT_EQ(P.maxDepth(), 3u);
}

TEST(ProvenanceRecorder, ExportsGraphCounters) {
  ProvenanceRecorder P;
  uint32_t A = P.fresh(FactKind::Binding, "a", "", SourceLoc());
  uint32_t B = P.fresh(FactKind::Binding, "b", "", SourceLoc());
  P.open(B);
  P.read(A);
  P.raise(B, 1, "x");
  P.close(B);

  obs::MetricsRegistry Reg;
  P.exportTo(Reg);
  EXPECT_EQ(Reg.counter("explain.facts").value(), 2u);
  EXPECT_EQ(Reg.counter("explain.edges").value(), 1u);
  EXPECT_EQ(Reg.counter("explain.raises").value(), 1u);
  EXPECT_EQ(Reg.counter("explain.max_depth").value(), 2u);
}

TEST(ProvenanceRecorder, BlamePathWalksToLeaf) {
  ProvenanceRecorder P;
  uint32_t Leaf = P.fresh(FactKind::Binding, "leaf", "", SourceLoc());
  uint32_t Mid = P.fresh(FactKind::Query, "mid", "", SourceLoc());
  uint32_t Top = P.fresh(FactKind::Decision, "top", "", SourceLoc());
  P.depend(Top, Mid);
  P.depend(Mid, Leaf);
  EXPECT_EQ(blamePath(P, Top), (std::vector<uint32_t>{Top, Mid, Leaf}));
  EXPECT_EQ(blamePath(P, Leaf), (std::vector<uint32_t>{Leaf}));
  EXPECT_TRUE(blamePath(P, NoFact).empty());
}

//===----------------------------------------------------------------------===//
// Fixpoint round traces (satellite of docs/EXPLAIN.md): the analyzer
// reports how many variables changed per iteration.
//===----------------------------------------------------------------------===//

TEST(ProvenanceRecorder, AnalyzerRecordsRoundChanges) {
  Frontend FE;
  ASSERT_TRUE(FE.parseAndType(partitionSortSource()));
  EscapeAnalyzer Analyzer(FE.Ast, *FE.Typed, FE.Diags);
  Analyzer.enableTracing();
  ASSERT_TRUE(Analyzer.globalEscape(FE.Ast.intern("append"), 1).has_value());
  const std::vector<unsigned> &Rounds = Analyzer.roundChanges();
  ASSERT_FALSE(Rounds.empty());
  // The fixpoint converged: its last round is the one where nothing (or
  // only the final join) changed, and at least one earlier round moved a
  // variable up the lattice.
  EXPECT_GT(std::accumulate(Rounds.begin(), Rounds.end(), 0u), 0u);
}

//===----------------------------------------------------------------------===//
// Pipeline-level report.
//===----------------------------------------------------------------------===//

PipelineResult runExplain(const std::string &Source) {
  PipelineOptions Options;
  Options.RunExplain = true;
  Options.RunProgram = false;
  return runPipeline(Source, Options);
}

TEST(ExplainReport, EveryChainResolvesAndTerminates) {
  PipelineResult R = runExplain(partitionSortSource());
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_TRUE(R.Explain.has_value());
  ASSERT_NE(R.Explain->Recorder, nullptr);
  size_t NumFacts = R.Explain->Recorder->numFacts();
  EXPECT_GT(NumFacts, 0u);
  ASSERT_FALSE(R.Explain->Chains.empty());
  for (const BlameChain &C : R.Explain->Chains) {
    // Site step first, terminal step last, at least those two.
    ASSERT_GE(C.Steps.size(), 2u);
    EXPECT_EQ(C.Steps.front().Title, "allocation site");
    if (C.Storage == SiteStorage::Heap) {
      EXPECT_FALSE(C.Code.empty());
    } else {
      EXPECT_TRUE(C.Code.empty());
    }
    for (const BlameStep &S : C.Steps)
      if (S.FactRef != NoFact) {
        EXPECT_LT(S.FactRef, NumFacts);
      }
    for (uint32_t F : C.Facts)
      EXPECT_LT(F, NumFacts);
  }
}

TEST(ExplainReport, AppendEscapeChainReachesEscapingReturn) {
  PipelineResult R = runExplain(partitionSortSource());
  ASSERT_TRUE(R.Explain.has_value());
  std::string Text = R.Explain->renderText(*R.SM);
  // The Appendix A partition sort: append's second argument escapes
  // through the result, and the chain must say so in fixpoint terms.
  EXPECT_NE(Text.find("escaping return"), std::string::npos) << Text;
  EXPECT_NE(Text.find("fixpoint derivation"), std::string::npos) << Text;
  EXPECT_NE(Text.find("escape verdict"), std::string::npos) << Text;
}

TEST(ExplainReport, ChainsAtFiltersBySourcePosition) {
  PipelineResult R = runExplain(partitionSortSource());
  ASSERT_TRUE(R.Explain.has_value());
  ASSERT_FALSE(R.Explain->Chains.empty());
  const BlameChain &First = R.Explain->Chains.front();
  LineColumn LC = R.SM->lineColumn(First.SiteLoc);
  auto Exact = R.Explain->chainsAt(*R.SM, LC);
  ASSERT_FALSE(Exact.empty());
  EXPECT_TRUE(std::any_of(Exact.begin(), Exact.end(),
                          [&](const BlameChain *C) { return C == &First; }));
  // Column 0 means "any site on the line".
  auto OnLine = R.Explain->chainsAt(*R.SM, LineColumn{LC.Line, 0});
  EXPECT_GE(OnLine.size(), Exact.size());
  EXPECT_TRUE(R.Explain->chainsAt(*R.SM, LineColumn{9999, 1}).empty());
}

TEST(ExplainReport, JsonAndDotExports) {
  PipelineResult R = runExplain(partitionSortSource());
  ASSERT_TRUE(R.Explain.has_value());
  std::string Json = R.Explain->toJson(*R.SM, "explain", R.Success);
  EXPECT_NE(Json.find("\"schema\": \"eal-explain-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"chains\": ["), std::string::npos);
  EXPECT_NE(Json.find("\"facts\": ["), std::string::npos);
  std::string Dot = R.Explain->toDot();
  EXPECT_EQ(Dot.rfind("digraph ", 0), 0u) << Dot.substr(0, 40);
  EXPECT_EQ(Dot.substr(Dot.size() - 2), "}\n");
}

TEST(ExplainReport, LintFindingsCarryBlame) {
  PipelineOptions Options;
  Options.RunLint = true;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(partitionSortSource(), Options);
  ASSERT_TRUE(R.Check.has_value());
  ASSERT_NE(R.Prov, nullptr);
  bool SawEscapeBlame = false;
  for (const check::Finding &F : R.Check->Findings) {
    for (uint32_t Ref : F.Blame)
      EXPECT_LT(Ref, R.Prov->numFacts());
    if (F.Code == "EAL-O001" && !F.Blame.empty())
      SawEscapeBlame = true;
  }
  // append's escaping argument draws an EAL-O001, and with the recorder
  // attached its blame chain must be populated.
  EXPECT_TRUE(SawEscapeBlame) << R.Check->render(*R.SM);
}

TEST(ExplainReport, RecorderAbsentUnlessRequested) {
  PipelineOptions Options;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(partitionSortSource(), Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  // The zero-cost discipline: no lint, no explain -> no recorder, no
  // report, nothing allocated.
  EXPECT_EQ(R.Prov, nullptr);
  EXPECT_FALSE(R.Explain.has_value());
}

//===----------------------------------------------------------------------===//
// Site classifier: storage classes must agree with the plan.
//===----------------------------------------------------------------------===//

TEST(ExplainReport, PlannedSitesRenderArenaTerminals) {
  // sum consumes its argument without letting it escape, so the literal
  // list's cons sites are planned into sum's activation (A.3.1) and
  // their chains must terminate in the matching arena step naming the
  // protecting callee.
  PipelineResult R = runExplain(
      "letrec\n"
      "  sum l = if (null l) then 0 else (car l) + sum (cdr l)\n"
      "in sum (cons 1 (cons 2 nil))");
  ASSERT_TRUE(R.Explain.has_value());
  bool SawPlanned = false;
  for (const BlameChain &C : R.Explain->Chains) {
    if (C.Storage == SiteStorage::Heap)
      continue;
    SawPlanned = true;
    const BlameStep &Last = C.Steps.back();
    if (C.Storage == SiteStorage::Stack)
      EXPECT_EQ(Last.Title, "stack allocation");
    else
      EXPECT_EQ(Last.Title, "region allocation");
    EXPECT_NE(Last.Detail.find("'"), std::string::npos) << Last.Detail;
  }
  EXPECT_TRUE(SawPlanned) << R.Explain->renderText(*R.SM);
}

} // namespace

//===- AstPrinterTest.cpp - printer canonicalization matrix ------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Parameterized source → canonical-form pairs: the printer must emit
// minimal parentheses while staying re-parsable, across the whole
// precedence ladder.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

struct CanonCase {
  const char *Source;
  const char *Canonical;
};

class PrinterCanonTest : public ::testing::TestWithParam<CanonCase> {};

TEST_P(PrinterCanonTest, PrintsCanonicalForm) {
  Frontend FE;
  const Expr *Root = FE.parse(GetParam().Source);
  ASSERT_NE(Root, nullptr) << GetParam().Source << "\n" << FE.diagText();
  PrintOptions PO;
  PO.Multiline = false;
  EXPECT_EQ(printExpr(FE.Ast, Root, PO), GetParam().Canonical)
      << "for source: " << GetParam().Source;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PrinterCanonTest,
    ::testing::Values(
        // Arithmetic associativity and precedence.
        CanonCase{"((1 + 2) + 3)", "1 + 2 + 3"},
        CanonCase{"1 + (2 + 3)", "1 + (2 + 3)"},
        CanonCase{"(1 * 2) + 3", "1 * 2 + 3"},
        CanonCase{"1 * (2 + 3)", "1 * (2 + 3)"},
        CanonCase{"((1 - 2) * 3) div 4 mod 5", "(1 - 2) * 3 div 4 mod 5"},
        // Relational below cons below additive.
        CanonCase{"(1 + 2) < (3 * 4)", "1 + 2 < 3 * 4"},
        CanonCase{"1 :: (2 :: nil)", "[1, 2]"},
        CanonCase{"1 :: 2 :: x", "1 :: 2 :: x"},
        CanonCase{"(1 :: x) = y", "1 :: x = y"},
        // Application is tightest; arguments parenthesize compounds.
        CanonCase{"f (g x) y", "f (g x) y"},
        CanonCase{"f (x + 1)", "f (x + 1)"},
        CanonCase{"(f x) + 1", "f x + 1"},
        CanonCase{"f (lambda(v). v)", "f (lambda(v). v)"},
        // Expression-level forms as operands.
        CanonCase{"(if c then 1 else 2) + 3", "(if c then 1 else 2) + 3"},
        CanonCase{"if c then 1 else 2 + 3", "if c then 1 else 2 + 3"},
        CanonCase{"(let x = 1 in x) + 2", "(let x = 1 in x) + 2"},
        // Lists and pairs.
        CanonCase{"[1, 1 + 2, f x]", "[1, 1 + 2, f x]"},
        CanonCase{"[[1], []]", "[[1], nil]"},
        CanonCase{"(1, 2 + 3)", "(1, 2 + 3)"},
        CanonCase{"fst (1, (2, 3))", "fst (1, (2, 3))"},
        // Named primitives stay names; cons with non-nil tail is '::'.
        CanonCase{"cons x y", "x :: y"},
        CanonCase{"car (cdr l)", "car (cdr l)"},
        CanonCase{"dcons x 1 nil", "dcons x 1 nil"}));

TEST(PrinterTest, MultilineLetrecLayout) {
  Frontend FE;
  const Expr *Root =
      FE.parse("letrec f x = x; g y = f y in g 1");
  ASSERT_NE(Root, nullptr);
  std::string Text = printExpr(FE.Ast, Root);
  EXPECT_NE(Text.find("letrec\n  f x = x;\n  g y = f y\nin g 1"),
            std::string::npos)
      << Text;
}

TEST(PrinterTest, OperatorPrimValueIsEtaExpanded) {
  // A bare operator primitive has no surface form; the printer emits a
  // re-parsable eta expansion.
  Frontend FE;
  const Expr *Root = FE.parse("(lambda(f). f 1 2) (lambda(a b). a + b)");
  ASSERT_NE(Root, nullptr);
  // Build a bare '+' value through the AST API instead.
  const Expr *Plus =
      FE.Ast.createPrim(SourceRange(), PrimOp::Add);
  PrintOptions PO;
  PO.Multiline = false;
  std::string Text = printExpr(FE.Ast, Plus, PO);
  EXPECT_EQ(Text, "(lambda(opa opb). opa + opb)");
  Frontend FE2;
  EXPECT_NE(FE2.parse(Text), nullptr) << FE2.diagText();
}

} // namespace

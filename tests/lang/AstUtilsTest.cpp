//===- AstUtilsTest.cpp - AST utility unit tests ----------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lang/AstUtils.h"

#include "TestUtil.h"
#include "lang/AstCloner.h"
#include "lang/AstPrinter.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class AstUtilsTest : public ::testing::Test {
protected:
  Frontend FE;

  std::vector<std::string> freeVarNames(const std::string &Source) {
    const Expr *Root = FE.parse(Source);
    EXPECT_NE(Root, nullptr) << FE.diagText();
    std::vector<std::string> Names;
    for (Symbol S : freeVariables(Root))
      Names.emplace_back(FE.Ast.spelling(S));
    return Names;
  }
};

//===----------------------------------------------------------------------===//
// Free variables (the F of the lambda escape rule, §3.4).
//===----------------------------------------------------------------------===//

TEST_F(AstUtilsTest, LambdaBindsItsParameter) {
  EXPECT_EQ(freeVarNames("lambda(x). x y"),
            (std::vector<std::string>{"y"}));
}

TEST_F(AstUtilsTest, FirstOccurrenceOrderDeduplicated) {
  EXPECT_EQ(freeVarNames("a + b + a + c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(AstUtilsTest, LetBindsOnlyItsBody) {
  EXPECT_EQ(freeVarNames("let x = x in x"),
            (std::vector<std::string>{"x"})); // the value's x is free
}

TEST_F(AstUtilsTest, LetrecBindsValuesAndBody) {
  EXPECT_EQ(freeVarNames("letrec f x = f (g x) in f h"),
            (std::vector<std::string>{"g", "h"}));
}

TEST_F(AstUtilsTest, PrimitivesAreNotVariables) {
  EXPECT_EQ(freeVarNames("cons (car l) nil"),
            (std::vector<std::string>{"l"}));
}

TEST_F(AstUtilsTest, ShadowingInNestedLambda) {
  EXPECT_EQ(freeVarNames("lambda(x). (lambda(x). x) x"),
            (std::vector<std::string>{}));
}

//===----------------------------------------------------------------------===//
// Traversal and call decomposition.
//===----------------------------------------------------------------------===//

TEST_F(AstUtilsTest, CountNodesVisitsEverything) {
  const Expr *Root = FE.parse("f (g 1) (h 2)");
  ASSERT_NE(Root, nullptr);
  // f, g, 1, h, 2 and 4 App nodes.
  EXPECT_EQ(countNodes(Root), 9u);
}

TEST_F(AstUtilsTest, UncurryCallRecoversSpine) {
  const Expr *Root = FE.parse("f a b c");
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(Root, Args);
  EXPECT_TRUE(isa<VarExpr>(Callee));
  ASSERT_EQ(Args.size(), 3u);
  EXPECT_TRUE(isa<VarExpr>(Args[0]));
}

TEST_F(AstUtilsTest, UncurryCallOnNonApp) {
  const Expr *Root = FE.parse("x");
  std::vector<const Expr *> Args;
  EXPECT_EQ(uncurryCall(Root, Args), Root);
  EXPECT_TRUE(Args.empty());
}

TEST_F(AstUtilsTest, LambdaArityCountsLeadingBinders) {
  EXPECT_EQ(lambdaArity(FE.parse("lambda(a b). lambda(c). a")), 3u);
  Frontend FE2;
  EXPECT_EQ(lambdaArity(FE2.parse("1 + 1")), 0u);
}

//===----------------------------------------------------------------------===//
// Cloning.
//===----------------------------------------------------------------------===//

TEST_F(AstUtilsTest, CloneIsDeepAndFresh) {
  const Expr *Root = FE.parse(
      "letrec f x = if (null x) then nil else cons (car x) (f (cdr x)) "
      "in f [1, 2]");
  ASSERT_NE(Root, nullptr);
  AstCloner Cloner(FE.Ast);
  const Expr *Copy = Cloner.clone(Root);
  EXPECT_NE(Copy, Root);
  EXPECT_EQ(countNodes(Copy), countNodes(Root));
  PrintOptions PO;
  PO.Multiline = false;
  EXPECT_EQ(printExpr(FE.Ast, Copy, PO), printExpr(FE.Ast, Root, PO));
  // Fresh node ids: no clone node shares an id with an original node.
  std::vector<bool> Seen(FE.Ast.numNodes(), false);
  forEachExpr(Root, [&](const Expr *E) { Seen[E->id()] = true; });
  forEachExpr(Copy, [&](const Expr *E) { EXPECT_FALSE(Seen[E->id()]); });
}

namespace {
/// A cloner that renames one variable, for testing the rewrite hook.
class RenameCloner : public AstCloner {
public:
  RenameCloner(AstContext &Ctx, Symbol From, Symbol To)
      : AstCloner(Ctx), From(From), To(To) {}

protected:
  const Expr *rewrite(const Expr *E) override {
    const auto *Var = dyn_cast<VarExpr>(E);
    if (Var && Var->name() == From)
      return Ctx.createVar(E->range(), To);
    return nullptr;
  }

private:
  Symbol From, To;
};
} // namespace

TEST_F(AstUtilsTest, ClonerRewriteHook) {
  const Expr *Root = FE.parse("f (f x)");
  RenameCloner Cloner(FE.Ast, FE.Ast.intern("f"), FE.Ast.intern("g"));
  const Expr *Copy = Cloner.clone(Root);
  PrintOptions PO;
  PO.Multiline = false;
  EXPECT_EQ(printExpr(FE.Ast, Copy, PO), "g (g x)");
}

} // namespace

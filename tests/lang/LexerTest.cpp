//===- LexerTest.cpp - nml lexer unit tests ---------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <vector>

using namespace eal;

namespace {

std::vector<Token> lexAll(std::string_view Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  std::vector<Token> Tokens;
  for (;;) {
    Token T = L.next();
    if (T.is(TokenKind::EndOfFile) || T.is(TokenKind::Error))
      break;
    Tokens.push_back(T);
  }
  return Tokens;
}

std::vector<TokenKind> kindsOf(std::string_view Source) {
  DiagnosticEngine Diags;
  std::vector<TokenKind> Kinds;
  for (const Token &T : lexAll(Source, Diags))
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(LexerTest, Keywords) {
  EXPECT_EQ(kindsOf("letrec let in if then else lambda true false nil"),
            (std::vector<TokenKind>{
                TokenKind::KwLetrec, TokenKind::KwLet, TokenKind::KwIn,
                TokenKind::KwIf, TokenKind::KwThen, TokenKind::KwElse,
                TokenKind::KwLambda, TokenKind::KwTrue, TokenKind::KwFalse,
                TokenKind::KwNil}));
}

TEST(LexerTest, OperatorsAndPunctuation) {
  EXPECT_EQ(kindsOf("( ) [ ] , ; . = <> < <= > >= + - * :: div mod"),
            (std::vector<TokenKind>{
                TokenKind::LParen, TokenKind::RParen, TokenKind::LBracket,
                TokenKind::RBracket, TokenKind::Comma, TokenKind::Semicolon,
                TokenKind::Dot, TokenKind::Equal, TokenKind::NotEqual,
                TokenKind::Less, TokenKind::LessEqual, TokenKind::Greater,
                TokenKind::GreaterEqual, TokenKind::Plus, TokenKind::Minus,
                TokenKind::Star, TokenKind::ColonColon, TokenKind::KwDiv,
                TokenKind::KwMod}));
}

TEST(LexerTest, IdentifiersAllowPrimesAndUnderscores) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("append' my_var x1", Diags);
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Spelling, "append'");
  EXPECT_EQ(Tokens[1].Spelling, "my_var");
  EXPECT_EQ(Tokens[2].Spelling, "x1");
}

TEST(LexerTest, IntegerLiterals) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("0 42 9223372036854775807", Diags);
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, INT64_MAX);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, IntegerOverflowIsAnError) {
  DiagnosticEngine Diags;
  Lexer L("99999999999999999999", Diags);
  Token T = L.next();
  EXPECT_TRUE(T.is(TokenKind::Error));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, LineComments) {
  EXPECT_EQ(kindsOf("1 -- this is a comment\n2"),
            (std::vector<TokenKind>{TokenKind::IntLiteral,
                                    TokenKind::IntLiteral}));
}

TEST(LexerTest, NestedBlockComments) {
  EXPECT_EQ(kindsOf("1 (* outer (* inner *) still out *) 2"),
            (std::vector<TokenKind>{TokenKind::IntLiteral,
                                    TokenKind::IntLiteral}));
}

TEST(LexerTest, UnterminatedBlockCommentIsAnError) {
  DiagnosticEngine Diags;
  Lexer L("1 (* never closed", Diags);
  (void)L.next(); // the 1
  Token T = L.next();
  EXPECT_TRUE(T.is(TokenKind::Error));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnknownCharacterIsAnError) {
  DiagnosticEngine Diags;
  Lexer L("@", Diags);
  EXPECT_TRUE(L.next().is(TokenKind::Error));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, SourceRangesAreAccurate) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("ab cd", Diags);
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Range.Begin.offset(), 0u);
  EXPECT_EQ(Tokens[0].Range.End.offset(), 2u);
  EXPECT_EQ(Tokens[1].Range.Begin.offset(), 3u);
  EXPECT_EQ(Tokens[1].Range.End.offset(), 5u);
}

TEST(LexerTest, EofIsSticky) {
  DiagnosticEngine Diags;
  Lexer L("x", Diags);
  (void)L.next();
  EXPECT_TRUE(L.next().is(TokenKind::EndOfFile));
  EXPECT_TRUE(L.next().is(TokenKind::EndOfFile));
}

TEST(LexerTest, MinusFollowedByDigitIsTwoTokens) {
  // No unary minus in nml: `-1` lexes as '-' then '1'.
  EXPECT_EQ(kindsOf("-1"), (std::vector<TokenKind>{TokenKind::Minus,
                                                   TokenKind::IntLiteral}));
}

} // namespace

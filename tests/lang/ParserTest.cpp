//===- ParserTest.cpp - nml parser unit tests -------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "TestUtil.h"
#include "lang/AstPrinter.h"
#include "lang/AstUtils.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class ParserTest : public ::testing::Test {
protected:
  Frontend FE;

  const Expr *parse(const std::string &Source) { return FE.parse(Source); }

  /// Parses then prints on one line (canonical form for shape checks).
  std::string canon(const std::string &Source) {
    const Expr *Root = parse(Source);
    if (!Root)
      return "<error: " + FE.diagText() + ">";
    PrintOptions PO;
    PO.Multiline = false;
    return printExpr(FE.Ast, Root, PO);
  }
};

//===----------------------------------------------------------------------===//
// Expressions and precedence.
//===----------------------------------------------------------------------===//

TEST_F(ParserTest, ArithmeticPrecedence) {
  EXPECT_EQ(canon("1 + 2 * 3"), "1 + 2 * 3");
  EXPECT_EQ(canon("(1 + 2) * 3"), "(1 + 2) * 3");
  EXPECT_EQ(canon("1 - 2 - 3"), "1 - 2 - 3"); // left assoc
  EXPECT_EQ(canon("1 - (2 - 3)"), "1 - (2 - 3)");
}

TEST_F(ParserTest, ConsBindsLooserThanPlusTighterThanCompare) {
  // The printer re-sugars the cons-with-nil as a list literal.
  EXPECT_EQ(canon("1 + 2 :: nil"), "[1 + 2]");
  const Expr *Root = parse("1 + 2 :: nil");
  // shape: cons (1+2) nil
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(Root, Args);
  ASSERT_TRUE(isa<PrimExpr>(Callee));
  EXPECT_EQ(cast<PrimExpr>(Callee)->op(), PrimOp::Cons);
}

TEST_F(ParserTest, ConsIsRightAssociative) {
  const Expr *Root = parse("1 :: 2 :: nil");
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(Root, Args);
  ASSERT_EQ(cast<PrimExpr>(Callee)->op(), PrimOp::Cons);
  ASSERT_EQ(Args.size(), 2u);
  // the tail is itself a cons
  std::vector<const Expr *> TailArgs;
  const Expr *TailCallee = uncurryCall(Args[1], TailArgs);
  EXPECT_EQ(cast<PrimExpr>(TailCallee)->op(), PrimOp::Cons);
}

TEST_F(ParserTest, ApplicationIsLeftAssociativeAndTightest) {
  const Expr *Root = parse("f x y + 1");
  // shape: (+ (f x y) 1)
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(Root, Args);
  ASSERT_TRUE(isa<PrimExpr>(Callee));
  EXPECT_EQ(cast<PrimExpr>(Callee)->op(), PrimOp::Add);
  std::vector<const Expr *> InnerArgs;
  const Expr *F = uncurryCall(Args[0], InnerArgs);
  EXPECT_TRUE(isa<VarExpr>(F));
  EXPECT_EQ(InnerArgs.size(), 2u);
}

TEST_F(ParserTest, ListLiteralDesugarsToConses) {
  const Expr *Root = parse("[1, 2]");
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(Root, Args);
  EXPECT_EQ(cast<PrimExpr>(Callee)->op(), PrimOp::Cons);
  EXPECT_EQ(canon("[1, 2, 3]"), "[1, 2, 3]");
  EXPECT_EQ(canon("[]"), "nil");
}

TEST_F(ParserTest, RelationalIsNonAssociative) {
  // relational takes one optional rhs, so "1 < 2 < 3" leaves "< 3"
  // unconsumed and the program-level parse fails.
  EXPECT_EQ(parse("1 < 2 < 3"), nullptr);
  EXPECT_TRUE(FE.Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Binders.
//===----------------------------------------------------------------------===//

TEST_F(ParserTest, LambdaMultiParamSugar) {
  const Expr *Root = parse("lambda(a b c). a");
  EXPECT_EQ(lambdaArity(Root), 3u);
}

TEST_F(ParserTest, LetWithParamsSugar) {
  const Expr *Root = parse("let f a b = a + b in f 1 2");
  const auto *Let = dyn_cast<LetExpr>(Root);
  ASSERT_NE(Let, nullptr);
  EXPECT_EQ(lambdaArity(Let->value()), 2u);
}

TEST_F(ParserTest, LetrecMultipleBindings) {
  const Expr *Root = parse(
      "letrec even n = if n = 0 then true else odd (n - 1);"
      "       odd n = if n = 0 then false else even (n - 1)"
      "in even 4");
  const auto *Letrec = dyn_cast<LetrecExpr>(Root);
  ASSERT_NE(Letrec, nullptr);
  EXPECT_EQ(Letrec->bindings().size(), 2u);
  // Mutual recursion: odd is visible inside even.
  EXPECT_NE(Letrec->findBinding(FE.Ast.intern("even")), nullptr);
  EXPECT_NE(Letrec->findBinding(FE.Ast.intern("odd")), nullptr);
}

TEST_F(ParserTest, LetrecTrailingSemicolonAllowed) {
  EXPECT_NE(parse("letrec f x = x; in f 1"), nullptr);
}

TEST_F(ParserTest, NestedLetrecScoping) {
  const Expr *Root =
      parse("letrec f x = letrec g y = y + x in g 1 in f 2");
  ASSERT_NE(Root, nullptr) << FE.diagText();
  const auto *Outer = cast<LetrecExpr>(Root);
  EXPECT_EQ(Outer->bindings().size(), 1u);
}

TEST_F(ParserTest, DuplicateLetrecBindingRejected) {
  EXPECT_EQ(parse("letrec f x = x; f y = y in f 1"), nullptr);
  EXPECT_TRUE(FE.Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Primitive name resolution and shadowing.
//===----------------------------------------------------------------------===//

TEST_F(ParserTest, PrimitiveNamesResolveWhenUnbound) {
  const Expr *Root = parse("cons 1 nil");
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(Root, Args);
  EXPECT_TRUE(isa<PrimExpr>(Callee));
}

TEST_F(ParserTest, BoundNamesShadowPrimitives) {
  const Expr *Root = parse("lambda(cons). cons");
  const auto *Lambda = cast<LambdaExpr>(Root);
  EXPECT_TRUE(isa<VarExpr>(Lambda->body()));
}

TEST_F(ParserTest, LetrecBoundNameShadowsPrimitive) {
  const Expr *Root = parse("letrec car x = x in car 1");
  const auto *Letrec = cast<LetrecExpr>(Root);
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(Letrec->body(), Args);
  EXPECT_TRUE(isa<VarExpr>(Callee));
}

//===----------------------------------------------------------------------===//
// Errors.
//===----------------------------------------------------------------------===//

TEST_F(ParserTest, ErrorsProduceDiagnosticsNotCrashes) {
  const char *Bad[] = {
      "",
      "(",
      "1 +",
      "if 1 then 2",
      "lambda(). x",
      "lambda x. x",
      "let = 3 in x",
      "letrec in 1",
      "[1, 2",
      "1 2 )",
      "let x = 1",
  };
  for (const char *Source : Bad) {
    Frontend Fresh;
    EXPECT_EQ(Fresh.parse(Source), nullptr) << "accepted: " << Source;
    EXPECT_TRUE(Fresh.Diags.hasErrors()) << "no diagnostic for: " << Source;
  }
}

//===----------------------------------------------------------------------===//
// Round trips: print(parse(s)) re-parses to the same canonical form.
//===----------------------------------------------------------------------===//

class RoundTripTest : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTripTest, PrintedFormReparsesCanonically) {
  Frontend FE1;
  const Expr *Root = FE1.parse(GetParam());
  ASSERT_NE(Root, nullptr) << FE1.diagText();
  PrintOptions PO;
  PO.Multiline = false;
  std::string Once = printExpr(FE1.Ast, Root, PO);

  Frontend FE2;
  const Expr *Again = FE2.parse(Once);
  ASSERT_NE(Again, nullptr) << "failed to reparse: " << Once << "\n"
                            << FE2.diagText();
  std::string Twice = printExpr(FE2.Ast, Again, PO);
  EXPECT_EQ(Once, Twice);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTripTest,
    ::testing::Values(
        "1 + 2 * 3 - 4",
        "if 1 < 2 then [1] else [2]",
        "lambda(x). lambda(y). x :: y",
        "let f a = a in f [1, [2] = [3], true]",
        "letrec f x = if (null x) then nil else cons (car x) (f (cdr x)) "
        "in f [1, 2]",
        "letrec m f l = if (null l) then nil else f (car l) :: m f (cdr l) "
        "in m (lambda(v). v * v) [1, 2, 3]",
        "(lambda(f). f 1) (lambda(x). x + 1)",
        "[[1, 2], [3]]",
        "1 :: 2 :: nil",
        "let x = 1 in let y = 2 in x + y"));

} // namespace

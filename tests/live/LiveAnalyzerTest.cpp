//===- LiveAnalyzerTest.cpp - demand lattice & liveness summaries ----------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Unit tests for the demand lattice (src/live/Demand.h), the summary
// query `LiveAnalyzer::functionDemand`, dead-site and unreached-code
// detection, and golden snapshots of `eal live` over the Appendix A
// programs. Regenerate the snapshots with
//
//   EAL_UPDATE_GOLDEN=1 ./live_tests --gtest_filter='LiveGolden*'
//
// and review the diff like any other source change.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Pipeline.h"
#include "live/Demand.h"
#include "live/LiveAnalyzer.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <set>
#include <sstream>

using namespace eal;
using namespace eal::live;
using namespace eal::test;

namespace {

//===----------------------------------------------------------------------===//
// Demand lattice
//===----------------------------------------------------------------------===//

TEST(DemandLattice, BottomAndTop) {
  EXPECT_TRUE(Demand::bottom().isBottom());
  EXPECT_FALSE(Demand::bottom().isTop());
  EXPECT_TRUE(Demand::top().isTop());
  EXPECT_FALSE(Demand::top().isBottom());
  EXPECT_EQ(Demand::top().Depth, Demand::Inf);
}

TEST(DemandLattice, NormalizedDeadClearsFlags) {
  Demand D{0, true, true};
  EXPECT_EQ(D.normalized(), Demand::bottom());
  EXPECT_EQ(D.normalized().str(), "dead");
}

TEST(DemandLattice, NormalizedSaturatesPastCap) {
  Demand D{static_cast<uint8_t>(Demand::DepthCap + 1), false, false};
  EXPECT_EQ(D.normalized().Depth, Demand::Inf);
  // At the cap itself the depth stays finite.
  EXPECT_EQ(Demand::spine(Demand::DepthCap).Depth, Demand::DepthCap);
}

TEST(DemandLattice, JoinIsPointwise) {
  Demand A{2, true, false};
  Demand B{3, false, true};
  Demand J = Demand::join(A, B);
  EXPECT_EQ(J.Depth, 3);
  EXPECT_TRUE(J.Car);
  EXPECT_TRUE(J.Snd);
  // Join with bottom is the identity; with top, top.
  EXPECT_EQ(Demand::join(A, Demand::bottom()), A);
  EXPECT_TRUE(Demand::join(A, Demand::top()).isTop());
  // Commutative.
  EXPECT_EQ(Demand::join(A, B), Demand::join(B, A));
}

TEST(DemandLattice, TailConsumesOneSpineLevel) {
  EXPECT_EQ((Demand{2, true, false}).tail(), (Demand{1, true, false}));
  // Dead stays dead; Inf stays Inf.
  EXPECT_TRUE(Demand::bottom().tail().isBottom());
  EXPECT_EQ(Demand::top().tail(), Demand::top());
  // Depth 1 tails to dead (and dead drops the flags).
  EXPECT_TRUE((Demand{1, true, true}).tail().isBottom());
}

TEST(DemandLattice, ViaCdrClimbsAndSaturates) {
  EXPECT_EQ(Demand::spine(2).viaCdr(), Demand::spine(3));
  // One step past the cap goes straight to Inf: the spine-recursive
  // consumer's fixpoint.
  EXPECT_EQ(Demand::spine(Demand::DepthCap).viaCdr().Depth, Demand::Inf);
  EXPECT_EQ(Demand::top().viaCdr(), Demand::top());
}

TEST(DemandLattice, EncodeIsInjectiveOnNormalForms) {
  std::set<uint16_t> Keys;
  unsigned Count = 0;
  for (unsigned Depth : {0u, 1u, 2u, 3u, 4u, unsigned(Demand::Inf)})
    for (bool Car : {false, true})
      for (bool Snd : {false, true}) {
        Demand D =
            Demand{static_cast<uint8_t>(Depth), Car, Snd}.normalized();
        if (D != Demand{static_cast<uint8_t>(Depth), Car, Snd})
          continue; // not a normal form (dead with flags)
        Keys.insert(D.encode());
        ++Count;
      }
  EXPECT_EQ(Keys.size(), Count);
}

TEST(DemandLattice, Rendering) {
  EXPECT_EQ(Demand::bottom().str(), "dead");
  EXPECT_EQ(Demand::spine(2).str(), "<2>");
  EXPECT_EQ((Demand{Demand::Inf, true, false}).str(), "<inf,car>");
  EXPECT_EQ((Demand{1, true, true}).str(), "<1,car,snd>");
}

//===----------------------------------------------------------------------===//
// functionDemand: the summary query
//===----------------------------------------------------------------------===//

TEST(LiveAnalyzer, AppendSummaryUnderTop) {
  Frontend F;
  ASSERT_TRUE(F.parseAndType(reverseSource())) << F.diagText();
  LiveAnalyzer LA(F.Ast, F.Root, &*F.Typed);
  std::vector<Demand> Ps = LA.functionDemand(F.Ast.intern("append"), Demand::top());
  ASSERT_EQ(Ps.size(), 2u);
  // x is walked in full by the recursion (strictness: `car x` reads the
  // element regardless of the caller's demand), but `snd` never touches
  // it — x is a list, not a pair.
  EXPECT_EQ(Ps[0].Depth, Demand::Inf);
  EXPECT_TRUE(Ps[0].Car);
  EXPECT_FALSE(Ps[0].Snd);
  // y becomes the result's tail: it inherits the full result demand.
  EXPECT_TRUE(Ps[1].isTop());
}

TEST(LiveAnalyzer, AppendSummaryUnderSpineDemand) {
  // A length-style consumer of `append x y` walks spines but no
  // elements: y's demand follows the result demand, while x is still
  // traversed in full and its heads still read (strict `car x`).
  Frontend F;
  ASSERT_TRUE(F.parseAndType(reverseSource())) << F.diagText();
  LiveAnalyzer LA(F.Ast, F.Root, &*F.Typed);
  std::vector<Demand> Ps =
      LA.functionDemand(F.Ast.intern("append"), Demand::spine(2));
  ASSERT_EQ(Ps.size(), 2u);
  EXPECT_EQ(Ps[0].Depth, Demand::Inf);
  EXPECT_TRUE(Ps[0].Car);
  EXPECT_EQ(Ps[1], Demand::spine(2));
}

TEST(LiveAnalyzer, SummariesAreMonotone) {
  Frontend F;
  ASSERT_TRUE(F.parseAndType(reverseSource())) << F.diagText();
  LiveAnalyzer LA(F.Ast, F.Root, &*F.Typed);
  Symbol Append = F.Ast.intern("append");
  std::vector<Demand> Low = LA.functionDemand(Append, Demand::spine(1));
  std::vector<Demand> High = LA.functionDemand(Append, Demand::top());
  ASSERT_EQ(Low.size(), High.size());
  for (size_t I = 0; I < Low.size(); ++I)
    EXPECT_EQ(Demand::join(Low[I], High[I]), High[I])
        << "param " << I << " demand not monotone in the result demand";
}

TEST(LiveAnalyzer, LengthSumDistinction) {
  // The headline precision claim: a spine-only consumer (length) leaves
  // every element dead, while sum reads them.
  static const char *Source = R"(
letrec
  length l = if (null l) then 0 else 1 + length (cdr l);
  sum l = if (null l) then 0 else (car l) + sum (cdr l)
in (length [1, 2, 3]) + (sum [4, 5, 6])
)";
  Frontend F;
  ASSERT_TRUE(F.parseAndType(Source)) << F.diagText();
  LiveAnalyzer LA(F.Ast, F.Root, &*F.Typed);
  std::vector<Demand> Len = LA.functionDemand(F.Ast.intern("length"), Demand::top());
  std::vector<Demand> Sum = LA.functionDemand(F.Ast.intern("sum"), Demand::top());
  ASSERT_EQ(Len.size(), 1u);
  ASSERT_EQ(Sum.size(), 1u);
  EXPECT_EQ(Len[0].Depth, Demand::Inf);
  EXPECT_FALSE(Len[0].Car) << "length must not demand elements";
  EXPECT_EQ(Sum[0].Depth, Demand::Inf);
  EXPECT_TRUE(Sum[0].Car) << "sum reads every element";
}

TEST(LiveAnalyzer, UnknownBindingIsEmpty) {
  Frontend F;
  ASSERT_TRUE(F.parseAndType(reverseSource())) << F.diagText();
  LiveAnalyzer LA(F.Ast, F.Root, &*F.Typed);
  EXPECT_TRUE(LA.functionDemand(F.Ast.intern("nosuch"), Demand::top()).empty());
}

//===----------------------------------------------------------------------===//
// Whole-program runs: dead sites, worst-casing, unreached code
//===----------------------------------------------------------------------===//

TEST(LiveAnalyzer, DeadDataDetected) {
  // `dead` is built and never read: both of its cons sites must grade ⊥
  // while the demanded list's sites stay live. The binding sits in the
  // program body, so it is dead *data*, not unreached code.
  static const char *Source = R"(
letrec
  sum l = if (null l) then 0 else (car l) + sum (cdr l)
in let dead = cons 1 (cons 2 nil) in
   sum [1, 2, 3]
)";
  Frontend F;
  ASSERT_TRUE(F.parseAndType(Source)) << F.diagText();
  LiveAnalyzer LA(F.Ast, F.Root, &*F.Typed);
  LiveReport R = LA.run();
  unsigned DeadData = 0, Live = 0;
  for (const SiteLive &S : R.Sites) {
    if (S.Dem.isBottom()) {
      EXPECT_FALSE(S.Unreached) << "program-body data is reachable";
      ++DeadData;
    } else {
      ++Live;
    }
  }
  EXPECT_EQ(DeadData, 2u) << "the two cells of `dead`";
  EXPECT_GT(Live, 0u) << "the summed list is demanded";
  EXPECT_EQ(R.deadSites().size(), R.deadSiteCount());
  EXPECT_EQ(R.deadSiteCount(), 2u);
}

TEST(LiveAnalyzer, FirstClassUseWorstCases) {
  // `pair` escapes into map's parameter f: its summary must be ⊤ on
  // every parameter, flagged WorstCased.
  Frontend F;
  ASSERT_TRUE(F.parseAndType(mapPairSource())) << F.diagText();
  LiveAnalyzer LA(F.Ast, F.Root, &*F.Typed);
  LiveReport R = LA.run();
  const FunctionLive *Pair = R.find(F.Ast.intern("pair"));
  ASSERT_NE(Pair, nullptr);
  EXPECT_TRUE(Pair->WorstCased);
  ASSERT_EQ(Pair->Params.size(), 1u);
  EXPECT_TRUE(Pair->Params[0].isTop());
  const FunctionLive *Map = R.find(F.Ast.intern("map"));
  ASSERT_NE(Map, nullptr);
  EXPECT_FALSE(Map->WorstCased) << "map itself is only called directly";
}

TEST(LiveAnalyzer, ConvergesWithinBudget) {
  Frontend F;
  ASSERT_TRUE(F.parseAndType(partitionSortSource())) << F.diagText();
  LiveAnalyzer LA(F.Ast, F.Root, &*F.Typed);
  LiveReport R = LA.run();
  EXPECT_FALSE(R.IterationLimitHit);
  EXPECT_GT(R.Rounds, 0u);
  EXPECT_GT(R.SummaryEntries, 0u);
  EXPECT_EQ(R.deadSiteCount(), 0u)
      << "every allocation of the sort feeds the printed result";
}

TEST(LiveAnalyzer, SupersededOriginalsAreUnreachedNotDead) {
  // Through the full pipeline the optimizer's DCONS cloning leaves the
  // original append/rev bodies uncalled. Their sites grade ⊥, but as
  // dead *code* (Unreached) — so the dead-data lint stays silent.
  PipelineOptions Options;
  Options.RunLive = true;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(reverseSource(), Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_TRUE(R.Live.has_value());
  unsigned Unreached = 0;
  for (const SiteLive &S : R.Live->Sites)
    if (S.Unreached) {
      EXPECT_TRUE(S.Dem.isBottom()) << "unreached implies ⊥";
      ++Unreached;
    }
  EXPECT_GT(Unreached, 0u) << "the superseded originals";
  ASSERT_TRUE(R.Check.has_value());
  for (const check::Finding &Fi : R.Check->Findings)
    EXPECT_NE(Fi.Code.substr(0, 5), "EAL-D")
        << Fi.Code << ": no dead-data finding expected on reverse";
}

TEST(LiveAnalyzer, JsonShapeSanity) {
  PipelineOptions Options;
  Options.RunLive = true;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(reverseSource(), Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_TRUE(R.Live.has_value());
  std::string Json = R.Live->toJson(*R.Ast, *R.SM, "live", R.Success);
  EXPECT_NE(Json.find("\"schema\": \"eal-live-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"functions\""), std::string::npos);
  EXPECT_NE(Json.find("\"sites\""), std::string::npos);
  EXPECT_NE(Json.find("\"unreached\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Golden snapshots of the rendered report (the `eal live` output)
//===----------------------------------------------------------------------===//

std::string goldenPath(const std::string &Name) {
  return std::string(EAL_SOURCE_DIR) + "/tests/live/golden/" + Name + ".live";
}

void checkGolden(const std::string &Path, const std::string &Actual) {
  if (std::getenv("EAL_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "updated " << Path;
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (run with EAL_UPDATE_GOLDEN=1 to create)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Actual, Buf.str())
      << "liveness report drifted from " << Path
      << "; if intentional, regenerate with EAL_UPDATE_GOLDEN=1";
}

void checkProgram(const std::string &Name, const char *Source) {
  PipelineOptions Options;
  Options.RunLive = true;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(Source, Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_TRUE(R.Live.has_value());
  checkGolden(goldenPath(Name), R.Live->render(*R.Ast, *R.SM));
}

TEST(LiveGolden, PartitionSort) {
  // APPEND, SPLIT, and PS of Appendix A: every site live, the split
  // accumulators fully demanded through the head/tail projections.
  checkProgram("partition_sort", partitionSortSource());
}

TEST(LiveGolden, Reverse) { checkProgram("reverse", reverseSource()); }

TEST(LiveGolden, MapPair) { checkProgram("map_pair", mapPairSource()); }

} // namespace

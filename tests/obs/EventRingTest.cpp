//===- EventRingTest.cpp - SPSC ring unit tests ---------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// The flight recorder's ring (obs/EventRing.h): wrap-around overwrite
// accounting, streaming refusal, pop ordering, and snapshot coherence.
// The concurrent paths are exercised in RecorderStressTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "obs/EventRing.h"

#include <gtest/gtest.h>

using namespace eal::obs::rec;

namespace {

RecEvent event(uint64_t A) {
  RecEvent Ev;
  Ev.Kind = static_cast<uint16_t>(RecKind::CellTouch);
  Ev.TimeUs = A;
  Ev.A = A;
  return Ev;
}

TEST(EventRingTest, PushPopFifoOrder) {
  EventRing Ring(8);
  for (uint64_t I = 0; I != 5; ++I)
    Ring.pushOverwrite(event(I));
  RecEvent Out;
  for (uint64_t I = 0; I != 5; ++I) {
    ASSERT_TRUE(Ring.pop(Out));
    EXPECT_EQ(Out.A, I);
  }
  EXPECT_FALSE(Ring.pop(Out));
  EXPECT_TRUE(Ring.empty());
  EXPECT_EQ(Ring.dropped(), 0u);
}

TEST(EventRingTest, OverwriteWrapKeepsNewestAndCountsDrops) {
  EventRing Ring(8);
  for (uint64_t I = 0; I != 20; ++I)
    Ring.pushOverwrite(event(I));
  EXPECT_EQ(Ring.dropped(), 12u);
  // The survivors are exactly the newest Capacity events, oldest first.
  RecEvent Out;
  for (uint64_t I = 12; I != 20; ++I) {
    ASSERT_TRUE(Ring.pop(Out));
    EXPECT_EQ(Out.A, I);
  }
  EXPECT_FALSE(Ring.pop(Out));
}

TEST(EventRingTest, TryPushRefusesWhenFull) {
  EventRing Ring(4);
  for (uint64_t I = 0; I != 4; ++I)
    EXPECT_TRUE(Ring.tryPush(event(I)));
  EXPECT_FALSE(Ring.tryPush(event(99)));
  EXPECT_EQ(Ring.dropped(), 0u);
  // Draining one slot makes room for exactly one more.
  RecEvent Out;
  ASSERT_TRUE(Ring.pop(Out));
  EXPECT_EQ(Out.A, 0u);
  EXPECT_TRUE(Ring.tryPush(event(4)));
  EXPECT_FALSE(Ring.tryPush(event(99)));
}

TEST(EventRingTest, SnapshotDoesNotConsume) {
  EventRing Ring(8);
  for (uint64_t I = 0; I != 3; ++I)
    Ring.pushOverwrite(event(I));
  std::vector<RecEvent> Snap;
  Ring.snapshot(Snap);
  ASSERT_EQ(Snap.size(), 3u);
  for (uint64_t I = 0; I != 3; ++I)
    EXPECT_EQ(Snap[I].A, I);
  // Still all poppable afterwards.
  RecEvent Out;
  for (uint64_t I = 0; I != 3; ++I)
    ASSERT_TRUE(Ring.pop(Out));
  EXPECT_FALSE(Ring.pop(Out));
}

TEST(EventRingTest, AllFieldsSurviveTheSlotPacking) {
  // Slots pack C/Kind/Tid into one word; every field must round-trip.
  EventRing Ring(4);
  RecEvent Ev;
  Ev.TimeUs = 0x0123456789abcdefULL;
  Ev.A = ~0ULL;
  Ev.B = 0xfeedfacecafebeefULL;
  Ev.C = 0xdeadbeef;
  Ev.Kind = static_cast<uint16_t>(RecKind::SpecDeopt);
  Ev.Tid = 0x7e57;
  Ring.pushOverwrite(Ev);
  RecEvent Out;
  ASSERT_TRUE(Ring.pop(Out));
  EXPECT_EQ(Out.TimeUs, Ev.TimeUs);
  EXPECT_EQ(Out.A, Ev.A);
  EXPECT_EQ(Out.B, Ev.B);
  EXPECT_EQ(Out.C, Ev.C);
  EXPECT_EQ(Out.Kind, Ev.Kind);
  EXPECT_EQ(Out.Tid, Ev.Tid);
}

} // namespace

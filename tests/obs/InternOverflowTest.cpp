//===- InternOverflowTest.cpp - 16-bit name table saturation --------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// The recorder's name interner is process-global and permanent, so this
// test — which floods all 64K ids — gets a binary of its own; sharing a
// process with the other recorder tests would leave them a poisoned
// table (tests/CMakeLists.txt keeps it off the obs_tests target).
//
//===----------------------------------------------------------------------===//

#include "obs/Recorder.h"

#include <gtest/gtest.h>

#include <string>

using namespace eal::obs::rec;

namespace {

TEST(InternOverflow, TableSaturatesToOverflowIdNotUb) {
  const uint16_t First = internName("overflow-probe-first");
  EXPECT_GT(First, 1u);

  // Flood the 16-bit table. Well past capacity, every new name must
  // collapse to the reserved "<overflow>" id instead of recycling or
  // overflowing ids.
  uint16_t LastFresh = First;
  bool Saturated = false;
  for (unsigned I = 0; I != 70000; ++I) {
    uint16_t Id = internName("overflow-probe-" + std::to_string(I));
    if (Id == 1) {
      Saturated = true;
      break;
    }
    EXPECT_GT(Id, LastFresh) << "ids must stay fresh until saturation";
    LastFresh = Id;
  }
  ASSERT_TRUE(Saturated) << "table never saturated";
  EXPECT_EQ(LastFresh, 0xFFFE) << "every id below the cap is handed out";

  // Saturation is sticky for new names...
  EXPECT_EQ(internName("overflow-probe-fresh"), 1u);
  EXPECT_EQ(lookupName(1), "<overflow>");
  // ...but names interned before saturation keep their ids and text.
  EXPECT_EQ(internName("overflow-probe-first"), First);
  EXPECT_EQ(lookupName(First), "overflow-probe-first");
  EXPECT_EQ(lookupName(0), "<none>");
}

} // namespace

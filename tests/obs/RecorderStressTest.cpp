//===- RecorderStressTest.cpp - multi-threaded emission stress ------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Concurrency contracts of the recorder, run under every ci.sh
// configuration and specifically the TSan one (EAL_TSAN):
//
//  - streaming mode is lossless: N producer threads emitting while the
//    drain tails the rings lose no event;
//  - flight mode never blocks and dump snapshots may run concurrently
//    with producers (torn frontier events are acceptable, data races
//    are not — the atomic-word slot layout exists for exactly this);
//  - the ring's Tail CAS protocol accounts every event as either popped
//    or dropped, never both, under a live producer/consumer pair.
//
//===----------------------------------------------------------------------===//

#include "obs/EventRing.h"
#include "obs/Recorder.h"
#include "obs/Timeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace eal::obs::rec;

namespace {

constexpr unsigned NumThreads = 4;

TEST(RecorderStress, StreamingIsLosslessAcrossFourProducerThreads) {
  const uint64_t PerThread = 20000;
  std::string Path = testing::TempDir() + "stress-stream.rec";
  StreamOptions Opts;
  Opts.Path = Path;
  Opts.Command = "stress";
  std::string Err;
  ASSERT_TRUE(startStream(Opts, &Err)) << Err;

  // Each producer emits births with process-unique AllocSeqs; ring
  // capacity (8192) is far below PerThread, so the drain and the
  // tryPush back-pressure loop genuinely interleave.
  std::vector<std::thread> Producers;
  for (unsigned T = 0; T != NumThreads; ++T)
    Producers.emplace_back([T, PerThread] {
      for (uint64_t I = 0; I != PerThread; ++I)
        emit(RecKind::CellBirth, T * 1000000 + I, /*SiteId=*/T,
             /*class=*/TlHeap);
    });
  for (std::thread &P : Producers)
    P.join();
  ASSERT_TRUE(stopStream(&Err)) << Err;

  Timeline Tl;
  ASSERT_TRUE(Tl.load(Path, &Err)) << Err;
  EXPECT_EQ(Tl.Dropped, 0u) << "streaming mode must be lossless";
  EXPECT_EQ(Tl.BirthsByClass[TlHeap], NumThreads * PerThread);

  // Not just the right count: every individual event arrived.
  std::set<uint64_t> Seqs;
  for (const CellRibbon &R : Tl.Ribbons)
    Seqs.insert(R.Seq);
  EXPECT_EQ(Seqs.size(), NumThreads * PerThread);
  std::remove(Path.c_str());
}

TEST(RecorderStress, FlightDumpRunsConcurrentlyWithProducers) {
  const uint64_t PerThread = 50000;
  std::string Path = testing::TempDir() + "stress-dump.rec";
  setDumpPath(Path, "stress");

  // Flight mode: rings wrap and overwrite, producers never block. The
  // dump below snapshots the rings while all four producers are still
  // mid-emission — the race the atomic slot words make benign.
  std::atomic<bool> Go{false};
  std::vector<std::thread> Producers;
  for (unsigned T = 0; T != NumThreads; ++T)
    Producers.emplace_back([&Go, T, PerThread] {
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (uint64_t I = 0; I != PerThread; ++I)
        emit(RecKind::CellTouch, T * 1000000 + I, T);
    });
  Go.store(true, std::memory_order_release);
  EXPECT_TRUE(dumpNow("stress-mid-flight"));
  for (std::thread &P : Producers)
    P.join();
  EXPECT_EQ(lastDumpTrigger(), "stress-mid-flight");
  clearDumpPath();

  Timeline Tl;
  std::string Err;
  ASSERT_TRUE(Tl.load(Path, &Err)) << Err;
  EXPECT_EQ(Tl.Mode, "flight");
  EXPECT_EQ(Tl.Trigger, "stress-mid-flight");
  std::remove(Path.c_str());
}

TEST(RecorderStress, RingAccountsEveryEventAsPoppedOrDropped) {
  const uint64_t Total = 200000;
  EventRing Ring(256);
  std::atomic<uint64_t> Popped{0};
  std::atomic<bool> Done{false};

  std::thread Consumer([&] {
    RecEvent Out;
    for (;;) {
      if (Ring.pop(Out))
        Popped.fetch_add(1, std::memory_order_relaxed);
      else if (Done.load(std::memory_order_acquire))
        break;
    }
    // Drain what the producer left behind after Done flipped.
    while (Ring.pop(Out))
      Popped.fetch_add(1, std::memory_order_relaxed);
  });

  RecEvent Ev;
  Ev.Kind = static_cast<uint16_t>(RecKind::CellTouch);
  for (uint64_t I = 0; I != Total; ++I) {
    Ev.A = I;
    Ring.pushOverwrite(Ev);
  }
  Done.store(true, std::memory_order_release);
  Consumer.join();

  EXPECT_TRUE(Ring.empty());
  EXPECT_EQ(Popped.load() + Ring.dropped(), Total)
      << "every event is exactly one of popped or dropped";
}

} // namespace

//===- RecorderTest.cpp - flight recorder + timeline tests ----------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// The flight recorder end to end (docs/RECORDER.md): streaming a run
// into an eal-rec-v1 file and replaying it with Timeline, the forced
// failure dump whose tail names the refutation, and the differential
// guarantees — recording a run changes nothing about the run, and the
// replayed totals equal the run's own RuntimeStats, across generated
// programs, seeds, engines, and both file formats.
//
// These tests require the recorder compiled in; tests/CMakeLists.txt
// only builds them under -DEAL_OBS_RECORDER=ON (the default).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "obs/Recorder.h"
#include "obs/Timeline.h"
#include "property/ProgramGenerator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

using namespace eal;
using namespace eal::obs;
using namespace eal::test;

namespace {

// A little list-heavy program: heap, stack, and region classes plus a
// DCONS reuse all show up, so timelines have something to reconcile.
const char *const Workload =
    "letrec\n"
    "  iota n = if n = 0 then nil else cons n (iota (n - 1));\n"
    "  sum l = if (null l) then 0 else (car l) + (sum (cdr l));\n"
    "  rev l acc = if (null l) then acc\n"
    "              else rev (cdr l) (cons (car l) acc)\n"
    "in (sum (rev (iota 200) nil)) + (sum (iota 100))\n";

std::string tempPath(const char *Name) {
  return testing::TempDir() + Name;
}

PipelineResult recordedRun(const std::string &Source, const std::string &Rec,
                           bool Binary, ExecutionEngine Engine) {
  PipelineOptions Options;
  Options.Engine = Engine;
  Options.Obs.RecordPath = Rec;
  Options.Obs.RecordBinary = Binary;
  Options.Obs.Command = "test";
  return runPipeline(Source, Options);
}

//===----------------------------------------------------------------------===//
// Stream round trip
//===----------------------------------------------------------------------===//

class StreamRoundTrip : public ::testing::TestWithParam<bool> {};

TEST_P(StreamRoundTrip, TimelineReconcilesWithRuntimeStats) {
  const bool Binary = GetParam();
  std::string Path = tempPath(Binary ? "roundtrip.bin.rec" : "roundtrip.rec");
  PipelineResult R = recordedRun(Workload, Path, Binary,
                                 ExecutionEngine::TreeWalker);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_TRUE(R.ObsExportErrors.empty()) << R.ObsExportErrors.front();

  rec::Timeline T;
  std::string Err;
  ASSERT_TRUE(T.load(Path, &Err)) << Err;
  EXPECT_EQ(T.Mode, "stream");
  EXPECT_EQ(T.Format, Binary ? "binary" : "ndjson");
  EXPECT_EQ(T.Command, "test");
  EXPECT_TRUE(T.Detail);
  EXPECT_EQ(T.Dropped, 0u) << "streaming mode must be lossless";
  EXPECT_FALSE(T.Counters.empty()) << "footer must carry RuntimeStats";

  std::string Why;
  EXPECT_TRUE(T.reconciles(&Why)) << Why;

  // Not just vacuously: the replay saw the run's actual volume.
  uint64_t Births = T.BirthsByClass[rec::TlHeap] +
                    T.BirthsByClass[rec::TlStack] +
                    T.BirthsByClass[rec::TlRegion];
  EXPECT_EQ(Births, R.Stats.totalCellsAllocated());
  EXPECT_EQ(T.GcRuns, R.Stats.GcRuns);
  EXPECT_FALSE(T.Phases.empty());
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Formats, StreamRoundTrip, ::testing::Bool());

//===----------------------------------------------------------------------===//
// Forced-failure dumps
//===----------------------------------------------------------------------===//

TEST(RecorderDump, TailNamesTheRefutedSite) {
  std::string Path = tempPath("refuted.rec");
  rec::setDumpPath(Path, "test");
  const uint32_t Site = 1185;
  rec::emit(rec::RecKind::OracleRefuted, Site,
            rec::internName("escape-claim"));
  ASSERT_TRUE(rec::dumpNow("oracle-refuted"));
  EXPECT_EQ(rec::lastDumpTrigger(), "oracle-refuted");
  // First trigger wins; a second failure must not clobber the evidence.
  EXPECT_FALSE(rec::dumpNow("spec-deopt"));
  rec::clearDumpPath();

  rec::Timeline T;
  std::string Err;
  ASSERT_TRUE(T.load(Path, &Err)) << Err;
  EXPECT_EQ(T.Mode, "flight");
  EXPECT_EQ(T.Trigger, "oracle-refuted");

  // The tail of the dump names the refutation: the last two markers are
  // the refuted site and the dump trigger itself.
  ASSERT_GE(T.Markers.size(), 2u);
  const rec::Marker &Refuted = T.Markers[T.Markers.size() - 2];
  EXPECT_EQ(Refuted.Kind, rec::RecKind::OracleRefuted);
  EXPECT_EQ(Refuted.A, Site);
  EXPECT_EQ(Refuted.Label, "escape-claim");
  const rec::Marker &Trigger = T.Markers.back();
  EXPECT_EQ(Trigger.Kind, rec::RecKind::DumpTrigger);
  EXPECT_EQ(Trigger.Label, "oracle-refuted");
  std::remove(Path.c_str());
}

TEST(RecorderDump, FailedPipelineRunDumps) {
  std::string Path = tempPath("run-failed.rec");
  PipelineOptions Options;
  Options.Obs.RecDumpPath = Path;
  Options.Obs.Command = "test";
  PipelineResult R = runPipeline("let x = in", Options); // parse error
  EXPECT_FALSE(R.Success);

  rec::Timeline T;
  std::string Err;
  ASSERT_TRUE(T.load(Path, &Err)) << Err;
  EXPECT_EQ(T.Mode, "flight");
  EXPECT_EQ(T.Trigger, "run-failed");
  ASSERT_FALSE(T.Markers.empty());
  EXPECT_EQ(T.Markers.back().Kind, rec::RecKind::DumpTrigger);
  EXPECT_EQ(T.Markers.back().Label, "run-failed");
  std::remove(Path.c_str());
}

TEST(RecorderDump, CleanRunLeavesNoDump) {
  std::string Path = tempPath("clean.rec");
  PipelineOptions Options;
  Options.Obs.RecDumpPath = Path;
  PipelineResult R = runPipeline("1 + 1", Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  std::ifstream In(Path);
  EXPECT_FALSE(In.good()) << "a successful run must not write a dump";
}

//===----------------------------------------------------------------------===//
// Interning
//===----------------------------------------------------------------------===//

TEST(RecorderIntern, ReservedIdsAndStability) {
  EXPECT_EQ(rec::lookupName(0), "<none>");
  EXPECT_EQ(rec::lookupName(1), "<overflow>");
  uint16_t Id = rec::internName("recorder-test-name");
  EXPECT_GT(Id, 1u);
  EXPECT_EQ(rec::internName("recorder-test-name"), Id); // stable
  EXPECT_EQ(rec::lookupName(Id), "recorder-test-name");
}

// The 16-bit table overflow path lives in its own binary
// (InternOverflowTest.cpp): flooding the process-global interner would
// poison every later test in this one.

//===----------------------------------------------------------------------===//
// Differential: recording must not change the run
//===----------------------------------------------------------------------===//

class RecorderDifferential : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RecorderDifferential, RecordedRunMatchesPlainRunAndReconciles) {
  const uint32_t Seed = GetParam();
  ProgramGenerator Gen(Seed);
  GenProgram Prog = Gen.generate(3);
  // Sweep both engines and both formats across the seed range.
  const ExecutionEngine Engine = Seed % 2 ? ExecutionEngine::TreeWalker
                                          : ExecutionEngine::Bytecode;
  const bool Binary = (Seed / 2) % 2;

  PipelineOptions Plain;
  Plain.Mode = TypeInferenceMode::Monomorphic;
  Plain.Engine = Engine;
  PipelineResult Base = runPipeline(Prog.Source, Plain);
  ASSERT_TRUE(Base.Success) << "seed " << Seed << ":\n"
                            << Prog.Source << Base.diagnostics();

  std::string Path = tempPath(("diff-" + std::to_string(Seed) + ".rec").c_str());
  PipelineOptions Recorded = Plain;
  Recorded.Obs.RecordPath = Path;
  Recorded.Obs.RecordBinary = Binary;
  PipelineResult R = runPipeline(Prog.Source, Recorded);
  ASSERT_TRUE(R.Success) << "seed " << Seed << ":\n" << Prog.Source;
  ASSERT_TRUE(R.ObsExportErrors.empty()) << R.ObsExportErrors.front();

  // Recording is observation-only: identical value, identical counters.
  EXPECT_EQ(R.RenderedValue, Base.RenderedValue) << "seed " << Seed;
  EXPECT_EQ(R.Stats.toJson(), Base.Stats.toJson()) << "seed " << Seed;

  // And the recording replays to exactly those counters.
  rec::Timeline T;
  std::string Err;
  ASSERT_TRUE(T.load(Path, &Err)) << "seed " << Seed << ": " << Err;
  std::string Why;
  EXPECT_TRUE(T.reconciles(&Why)) << "seed " << Seed << ": " << Why;
  EXPECT_FALSE(T.Counters.empty());
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecorderDifferential,
                         ::testing::Range(1u, 257u));

} // namespace

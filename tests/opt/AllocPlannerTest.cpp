//===- AllocPlannerTest.cpp - A.3.1/A.3.3 planning unit tests ---------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "opt/AllocPlanner.h"

#include "TestUtil.h"
#include "lang/AstUtils.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class AllocPlannerTest : public ::testing::Test {
protected:
  Frontend FE;
  std::unique_ptr<EscapeAnalyzer> Analyzer;

  std::optional<AllocationPlan>
  plan(const std::string &Source, AllocPlannerOptions Options = {},
       TypeInferenceMode Mode = TypeInferenceMode::Polymorphic) {
    if (!FE.parseAndType(Source, Mode))
      return std::nullopt;
    Analyzer = std::make_unique<EscapeAnalyzer>(FE.Ast, *FE.Typed, FE.Diags);
    AllocPlanner Planner(FE.Ast, *FE.Typed, *Analyzer, Options);
    return Planner.run();
  }

  /// Counts sites in the whole plan by class.
  static std::pair<unsigned, unsigned> countSites(const AllocationPlan &P) {
    unsigned Stack = 0, Region = 0;
    for (const ArgArenaDirective &D : P.Directives)
      for (const auto &[Id, Class] : D.Sites)
        (Class == ArenaSiteClass::Stack ? Stack : Region) += 1;
    return {Stack, Region};
  }
};

TEST_F(AllocPlannerTest, LiteralArgumentGetsStackSites) {
  auto P = plan("letrec suml l = if (null l) then 0 "
                "else car l + suml (cdr l) in suml [1, 2, 3]");
  ASSERT_TRUE(P.has_value()) << FE.diagText();
  ASSERT_EQ(P->Directives.size(), 1u);
  EXPECT_EQ(P->Directives[0].ArgIndex, 0u);
  EXPECT_EQ(P->Directives[0].ProtectedSpines, 1u);
  auto [Stack, Region] = countSites(*P);
  EXPECT_EQ(Stack, 3u); // the three literal conses
  EXPECT_EQ(Region, 0u);
}

TEST_F(AllocPlannerTest, EscapingArgumentGetsNoDirective) {
  auto P = plan("letrec id x = x in id [1, 2, 3]");
  ASSERT_TRUE(P.has_value()) << FE.diagText();
  EXPECT_TRUE(P->Directives.empty());
}

TEST_F(AllocPlannerTest, ProducerCallGetsRegionSites) {
  const char *Source = R"(
letrec
  suml l = if (null l) then 0 else car l + suml (cdr l);
  build n = if n = 0 then nil else cons n (build (n - 1))
in suml (build 10)
)";
  auto P = plan(Source);
  ASSERT_TRUE(P.has_value()) << FE.diagText();
  ASSERT_EQ(P->Directives.size(), 1u);
  auto [Stack, Region] = countSites(*P);
  EXPECT_EQ(Stack, 0u);
  EXPECT_EQ(Region, 1u); // build's single spine cons
}

TEST_F(AllocPlannerTest, RegionDisabledDropsProducerSites) {
  const char *Source = R"(
letrec
  suml l = if (null l) then 0 else car l + suml (cdr l);
  build n = if n = 0 then nil else cons n (build (n - 1))
in suml (build 10)
)";
  AllocPlannerOptions Options;
  Options.EnableRegion = false;
  auto P = plan(Source, Options);
  ASSERT_TRUE(P.has_value()) << FE.diagText();
  EXPECT_TRUE(P->Directives.empty());
}

TEST_F(AllocPlannerTest, StackDisabledDropsLiteralSites) {
  AllocPlannerOptions Options;
  Options.EnableStack = false;
  auto P = plan("letrec suml l = if (null l) then 0 "
                "else car l + suml (cdr l) in suml [1, 2, 3]",
                Options);
  ASSERT_TRUE(P.has_value()) << FE.diagText();
  EXPECT_TRUE(P->Directives.empty());
}

TEST_F(AllocPlannerTest, NestedLiteralAttributedToProtectedDepth) {
  // suml2 consumes both spines without releasing them: protected = 2,
  // so both the outer and inner conses are stack sites.
  const char *Source = R"(
letrec
  suml l = if (null l) then 0 else car l + suml (cdr l);
  suml2 m = if (null m) then 0 else suml (car m) + suml2 (cdr m)
in suml2 [[1, 2], [3]]
)";
  auto P = plan(Source);
  ASSERT_TRUE(P.has_value()) << FE.diagText();
  ASSERT_EQ(P->Directives.size(), 1u);
  EXPECT_EQ(P->Directives[0].ProtectedSpines, 2u);
  auto [Stack, Region] = countSites(*P);
  EXPECT_EQ(Stack, 5u); // 2 outer + 3 inner literal conses
}

TEST_F(AllocPlannerTest, ShallowProtectionLimitsDepth) {
  // heads keeps the element lists (inner spine escapes), so only the
  // outer spine (protected = 1) may be arena-allocated. Monomorphic mode
  // gives the body its use-instance car^2 annotation; in polymorphic mode
  // the local test is conservative and plans nothing (also safe).
  const char *Source = R"(
letrec
  heads m = if (null m) then nil else cons (car m) (heads (cdr m))
in heads [[1, 2], [3]]
)";
  auto P = plan(Source, {}, TypeInferenceMode::Monomorphic);
  ASSERT_TRUE(P.has_value()) << FE.diagText();
  ASSERT_EQ(P->Directives.size(), 1u);
  EXPECT_EQ(P->Directives[0].ProtectedSpines, 1u);
  auto [Stack, Region] = countSites(*P);
  EXPECT_EQ(Stack, 2u); // only the outer spine's conses
}

TEST_F(AllocPlannerTest, ScalarArgumentsIgnored) {
  auto P = plan("letrec f n = n + 1 in f 3");
  ASSERT_TRUE(P.has_value()) << FE.diagText();
  EXPECT_TRUE(P->Directives.empty());
}

TEST_F(AllocPlannerTest, IndexingByCallWorks) {
  auto P = plan("letrec suml l = if (null l) then 0 "
                "else car l + suml (cdr l) in suml [1]");
  ASSERT_TRUE(P.has_value()) << FE.diagText();
  ASSERT_EQ(P->Directives.size(), 1u);
  uint32_t Call = P->Directives[0].CallAppId;
  ASSERT_EQ(P->ByCall.count(Call), 1u);
  EXPECT_EQ(P->ByCall.at(Call).size(), 1u);
  EXPECT_EQ(P->ByCall.at(Call)[0], &P->Directives[0]);
}

TEST_F(AllocPlannerTest, RenderedPlanMentionsCalleeAndCounts) {
  auto P = plan("letrec suml l = if (null l) then 0 "
                "else car l + suml (cdr l) in suml [1, 2]");
  ASSERT_TRUE(P.has_value());
  std::string Text = renderAllocationPlan(FE.Ast, *P);
  EXPECT_NE(Text.find("call of suml"), std::string::npos) << Text;
  EXPECT_NE(Text.find("2 stack site(s)"), std::string::npos) << Text;
}

} // namespace

//===- ReuseTransformTest.cpp - A.3.2 DCONS transformation -----------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "opt/ReuseTransform.h"

#include "TestUtil.h"
#include "lang/AstPrinter.h"
#include "lang/AstUtils.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class ReuseTransformTest : public ::testing::Test {
protected:
  Frontend FE;
  std::optional<ProgramEscapeReport> Report;
  std::optional<ReuseTransformResult> Result;

  bool runTransform(const char *Source) {
    if (!FE.parseAndType(Source))
      return false;
    EscapeAnalyzer Analyzer(FE.Ast, *FE.Typed, FE.Diags);
    Report = Analyzer.analyzeProgram();
    SharingAnalysis Sharing(FE.Ast, *FE.Typed, *Report);
    ReuseTransform Transform(FE.Ast, *FE.Typed, *Report, Sharing);
    Result = Transform.run();
    return Result.has_value();
  }

  const ReuseVersion *findVersion(const char *Original) {
    Symbol Name = FE.Ast.intern(Original);
    for (const ReuseVersion &RV : Result->Versions)
      if (RV.Original == Name)
        return &RV;
    return nullptr;
  }

  std::string printed() {
    PrintOptions PO;
    PO.Multiline = false;
    return printExpr(FE.Ast, Result->NewRoot, PO);
  }
};

TEST_F(ReuseTransformTest, AppendGetsReuseVersion) {
  ASSERT_TRUE(runTransform(partitionSortSource())) << FE.diagText();
  // APPEND' reuses parameter 1 (x) at exactly one cons site.
  const ReuseVersion *RV = findVersion("append");
  ASSERT_NE(RV, nullptr);
  EXPECT_EQ(RV->ParamIndex, 0u);
  EXPECT_EQ(RV->DconsSites.size(), 1u);
  EXPECT_EQ(FE.Ast.spelling(RV->Primed), "append'");
}

TEST_F(ReuseTransformTest, AppendPrimeRecursesIntoItself) {
  ASSERT_TRUE(runTransform(partitionSortSource())) << FE.diagText();
  // The transformed program must contain
  //   append' x y = ... dcons x (car x) (append' (cdr x) y)
  std::string Text = printed();
  EXPECT_NE(Text.find("dcons x (car x) (append' (cdr x) y)"),
            std::string::npos)
      << Text;
}

TEST_F(ReuseTransformTest, PartitionSortCallsAppendPrime) {
  ASSERT_TRUE(runTransform(partitionSortSource())) << FE.diagText();
  // PS' shape: inside ps, append is retargeted to append' because its
  // first argument (a ps result) has an unshared top spine.
  bool Found = false;
  Symbol Append = FE.Ast.intern("append");
  Symbol AppendPrime = FE.Ast.intern("append'");
  for (const CallRetarget &RT : Result->Retargets)
    if (RT.From == Append && RT.To == AppendPrime)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST_F(ReuseTransformTest, PartitionSortGetsOwnReuseVersion) {
  ASSERT_TRUE(runTransform(partitionSortSource())) << FE.diagText();
  // PS'' shape: ps itself has a reuse version that dconses x.
  const ReuseVersion *RV = findVersion("ps");
  ASSERT_NE(RV, nullptr);
  EXPECT_EQ(RV->ParamIndex, 0u);
  std::string Text = printed();
  EXPECT_NE(Text.find("dcons x (car x)"), std::string::npos) << Text;
}

TEST_F(ReuseTransformTest, SplitGetsNoReuseVersionForEscapingParams) {
  ASSERT_TRUE(runTransform(partitionSortSource())) << FE.diagText();
  // split's l and h escape entirely (protected 0) and p is an int; only
  // x (param 2, protected top spine) could host reuse. split's conses
  // build l/h extensions and the result pair; the [l,h] conses are under
  // `null x` = true (x may be nil there? no: then-branch means x IS nil),
  // so no dcons site for x exists in the then branch; the else branch
  // conses qualify.
  const ReuseVersion *RV = findVersion("split");
  if (RV) {
    EXPECT_EQ(RV->ParamIndex, 1u);
  }
}

TEST_F(ReuseTransformTest, ReverseMatchesPaperRevPrime) {
  ASSERT_TRUE(runTransform(reverseSource())) << FE.diagText();
  // REV' l = if (null l) then nil
  //          else APPEND' (REV' (cdr l)) (DCONS l (car l) nil)
  const ReuseVersion *RV = findVersion("rev");
  ASSERT_NE(RV, nullptr);
  std::string Text = printed();
  EXPECT_NE(Text.find("dcons l (car l) nil"), std::string::npos) << Text;
  EXPECT_NE(Text.find("append' (rev' (cdr l)) (dcons l (car l) nil)"),
            std::string::npos)
      << Text;
}

TEST_F(ReuseTransformTest, NoReuseWhenParamEscapes) {
  // id returns its argument: the whole spine escapes, no reuse version.
  ASSERT_TRUE(runTransform("letrec id x = x in id [1, 2]")) << FE.diagText();
  EXPECT_EQ(findVersion("id"), nullptr);
}

TEST_F(ReuseTransformTest, NoReuseWithoutNonNilGuard) {
  // The cons is unguarded: x may be nil, so its head cell may not exist.
  ASSERT_TRUE(runTransform(
      "letrec f x = cons 1 (cdr x) in f [1, 2]"))
      << FE.diagText();
  EXPECT_EQ(findVersion("f"), nullptr);
}

TEST_F(ReuseTransformTest, NoReuseWhenUsedAfter) {
  // x is read (via length) after the cons on some path: the overwrite
  // would be observable.
  const char *Source = R"(
letrec
  length l = if (null l) then 0 else 1 + length (cdr l);
  f x = if (null x) then 0
        else length (cons 1 (cdr x)) + length x
in f [1, 2, 3]
)";
  ASSERT_TRUE(runTransform(Source)) << FE.diagText();
  EXPECT_EQ(findVersion("f"), nullptr);
}

TEST_F(ReuseTransformTest, TransformedProgramStillTypechecks) {
  ASSERT_TRUE(runTransform(partitionSortSource())) << FE.diagText();
  TypeInference TI(FE.Ast, FE.Types, FE.Diags);
  auto Retyped = TI.run(Result->NewRoot);
  EXPECT_TRUE(Retyped.has_value()) << FE.diagText();
}

TEST_F(ReuseTransformTest, TransformedProgramReparses) {
  ASSERT_TRUE(runTransform(partitionSortSource())) << FE.diagText();
  std::string Text = printExpr(FE.Ast, Result->NewRoot);
  Frontend FE2;
  EXPECT_TRUE(FE2.parseAndType(Text)) << Text << "\n" << FE2.diagText();
}

} // namespace

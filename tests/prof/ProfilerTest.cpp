//===- ProfilerTest.cpp ---------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// eal::prof: the StackTree cursor semantics, the site counters, and —
// end to end through the pipeline on both engines — that the profiler's
// per-site sums reconcile exactly with RuntimeStats and that every
// planned stack/region/reuse site actually fires with its planned
// storage class.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "prof/ProfileReport.h"
#include "prof/Profiler.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace eal;

namespace {

//===----------------------------------------------------------------------===//
// StackTree
//===----------------------------------------------------------------------===//

std::string key(uint32_t K) {
  // Built with += rather than "f" + std::to_string(K): GCC 12's
  // -Wrestrict false-positives on the rvalue concatenation under -O2
  // (same workaround as elsewhere in the repo, see tools/ci.sh matrix).
  if (K == prof::StackTree::RootKey)
    return "root";
  std::string S = "f";
  S += std::to_string(K);
  return S;
}

TEST(StackTree, AttributesElapsedWeightToTheCursor) {
  prof::StackTree T;
  T.attribute(5); // 5 ticks of top-level work
  T.push(1);
  T.attribute(8); // 3 ticks in f1
  T.push(2);
  T.attribute(10); // 2 ticks in f1;f2
  T.pop();
  T.attribute(14); // 4 more in f1
  T.pop();
  T.finish(16); // 2 more at top level

  EXPECT_EQ(T.totalWeight(), 16u);
  EXPECT_EQ(T.selfWeight(prof::StackTree::RootKey), 7u);
  EXPECT_EQ(T.selfWeight(1), 7u);
  EXPECT_EQ(T.selfWeight(2), 2u);
  EXPECT_EQ(T.nodeCount(), 3u); // root, f1, f1;f2
}

TEST(StackTree, InternsRepeatedPaths) {
  prof::StackTree T;
  for (int I = 0; I != 100; ++I) {
    T.push(1);
    T.push(2);
    T.attribute(static_cast<uint64_t>(I) + 1);
    T.pop();
    T.pop();
  }
  EXPECT_EQ(T.nodeCount(), 3u);
  EXPECT_EQ(T.depth(), 0u); // every push was popped
}

TEST(StackTree, ReplaceMakesASibling) {
  prof::StackTree T;
  T.push(1);
  T.attribute(3);
  T.replace(2); // tail call: f2 replaces f1 under the root
  T.attribute(7);
  T.pop();
  T.finish(7);

  EXPECT_EQ(T.selfWeight(1), 3u);
  EXPECT_EQ(T.selfWeight(2), 4u);
  std::string Folded = T.folded(key, "e");
  EXPECT_NE(Folded.find("e;f1 3\n"), std::string::npos);
  EXPECT_NE(Folded.find("e;f2 4\n"), std::string::npos);
  // f2 is NOT a child of f1.
  EXPECT_EQ(Folded.find("e;f1;f2"), std::string::npos);
}

TEST(StackTree, FoldedEmitsOneLinePerHotNode) {
  prof::StackTree T;
  T.attribute(1);
  T.push(7);
  T.push(8);
  T.attribute(11);
  T.finish(11); // unwinds both frames

  std::string Folded = T.folded(key, "vm");
  EXPECT_NE(Folded.find("vm 1\n"), std::string::npos);
  EXPECT_NE(Folded.find("vm;f7;f8 10\n"), std::string::npos);
  // f7 accumulated no self weight: no line.
  EXPECT_EQ(Folded.find("vm;f7 "), std::string::npos);
}

TEST(StackTree, FinishUnwindsAbandonedFrames) {
  prof::StackTree T;
  T.push(1);
  T.push(2);
  T.push(3);
  T.finish(9);
  EXPECT_EQ(T.depth(), 0u);
  EXPECT_EQ(T.totalWeight(), 9u);
  // A fresh run can start pushing again from the root.
  T.push(4);
  T.attribute(12);
  T.finish(12);
  EXPECT_EQ(T.selfWeight(4), 3u);
}

//===----------------------------------------------------------------------===//
// Site counters
//===----------------------------------------------------------------------===//

TEST(Profiler, SiteCountersBucketByStorageClass) {
  prof::Profiler P;
  P.siteAlloc(10, prof::Storage::Heap);
  P.siteAlloc(10, prof::Storage::Heap);
  P.siteAlloc(10, prof::Storage::Stack);
  P.siteAlloc(11, prof::Storage::Region);
  P.siteDeath(10, prof::Storage::Heap, 4);
  P.siteReuse(12, 10, 9);

  const prof::SiteCounters *S10 = P.site(10);
  ASSERT_NE(S10, nullptr);
  EXPECT_EQ(S10->Allocs[0], 2u);
  EXPECT_EQ(S10->Allocs[1], 1u);
  EXPECT_EQ(S10->Allocs[2], 0u);
  EXPECT_EQ(S10->totalAllocs(), 3u);
  EXPECT_EQ(S10->Deaths[0], 1u);
  EXPECT_EQ(S10->Overwritten, 1u);
  // Both the GC death and the overwrite recorded a lifetime.
  EXPECT_EQ(S10->Lifetime.count(), 2u);

  const prof::SiteCounters *S12 = P.site(12);
  ASSERT_NE(S12, nullptr);
  EXPECT_EQ(S12->Reuses, 1u);
  EXPECT_EQ(P.site(99), nullptr);
}

//===----------------------------------------------------------------------===//
// End to end through the pipeline
//===----------------------------------------------------------------------===//

// The paper's partition sort (A.3.1 shape): a literal input list whose
// spine is stack-allocatable into ps's activation, interior conses that
// the reuse transform turns into DCONS, and an append chain the planner
// regions when reuse is off.
const char *SortSource = R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h = if (null x) then cons l (cons h nil)
                  else if (car x) <= p
                       then split p (cdr x) (cons (car x) l) h
                       else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (car (split (car x) (cdr x) nil nil)))
                     (cons (car x)
                           (ps (car (cdr (split (car x) (cdr x) nil nil)))))
in ps (cons 5 (cons 2 (cons 7 (cons 1 (cons 3 (cons 4 nil))))))
)";

PipelineResult profiledRun(ExecutionEngine Engine, prof::Profiler &P,
                           bool EnableReuse) {
  PipelineOptions O;
  O.Engine = Engine;
  O.RunLint = true;
  O.Optimize.EnableReuse = EnableReuse;
  O.Obs.Profile = &P;
  PipelineResult R = runPipeline(SortSource, O);
  EXPECT_TRUE(R.Success) << R.diagnostics();
  return R;
}

struct SiteSums {
  uint64_t Allocs[prof::NumStorageClasses] = {};
  uint64_t Reuses = 0;
};

SiteSums sumSites(const prof::Profiler &P) {
  SiteSums S;
  for (const auto &[Id, C] : P.sites()) {
    (void)Id;
    for (unsigned K = 0; K != prof::NumStorageClasses; ++K)
      S.Allocs[K] += C.Allocs[K];
    S.Reuses += C.Reuses;
  }
  return S;
}

class ProfiledEngineTest : public ::testing::TestWithParam<ExecutionEngine> {};

TEST_P(ProfiledEngineTest, SiteSumsReconcileWithRuntimeStats) {
  prof::Profiler P;
  PipelineResult R = profiledRun(GetParam(), P, /*EnableReuse=*/true);
  SiteSums S = sumSites(P);
  EXPECT_EQ(S.Allocs[0], R.Stats.HeapCellsAllocated);
  EXPECT_EQ(S.Allocs[1], R.Stats.StackCellsAllocated);
  EXPECT_EQ(S.Allocs[2], R.Stats.RegionCellsAllocated);
  EXPECT_EQ(S.Reuses, R.Stats.DconsReuses);
  EXPECT_GT(R.Stats.DconsReuses, 0u) << "workload lost its DCONS sites";
  // Every allocation was tagged: nothing landed on the no-site bucket.
  EXPECT_EQ(P.site(prof::NoSite), nullptr);
}

TEST_P(ProfiledEngineTest, PlannedStackAndRegionSitesFire) {
  prof::Profiler P;
  PipelineResult R = profiledRun(GetParam(), P, /*EnableReuse=*/false);
  ASSERT_TRUE(R.Optimized.has_value());
  EXPECT_GT(R.Stats.StackCellsAllocated, 0u) << "workload lost its plan";

  std::set<uint32_t> Stack, Region;
  for (const ArgArenaDirective &D : R.Optimized->Plan.Directives)
    for (const auto &[Site, Class] : D.Sites)
      (Class == ArenaSiteClass::Stack ? Stack : Region).insert(Site);
  ASSERT_FALSE(Stack.empty());

  // Every planned site allocated at least once, and only in its class.
  for (uint32_t Site : Stack) {
    const prof::SiteCounters *C = P.site(Site);
    ASSERT_NE(C, nullptr) << "stack site " << Site << " never fired";
    EXPECT_GT(C->Allocs[1], 0u);
    EXPECT_EQ(C->Allocs[0], 0u);
    EXPECT_EQ(C->Allocs[2], 0u);
    // Arena frees reported the deaths.
    EXPECT_EQ(C->Deaths[1], C->Allocs[1]);
  }
  for (uint32_t Site : Region) {
    const prof::SiteCounters *C = P.site(Site);
    ASSERT_NE(C, nullptr) << "region site " << Site << " never fired";
    EXPECT_GT(C->Allocs[2], 0u);
  }
}

TEST_P(ProfiledEngineTest, StacksAreNonTrivialAndConserveWeight) {
  prof::Profiler P;
  PipelineResult R = profiledRun(GetParam(), P, /*EnableReuse=*/true);
  EXPECT_EQ(P.stacks().totalWeight(), P.clock());
  EXPECT_EQ(P.clock(), R.Stats.Steps);
  EXPECT_GT(P.stacks().nodeCount(), 3u);
  EXPECT_EQ(P.stacks().depth(), 0u); // finish() unwound everything
  std::string Folded = P.stacks().folded(key, "e");
  EXPECT_GT(std::count(Folded.begin(), Folded.end(), '\n'), 3);
}

INSTANTIATE_TEST_SUITE_P(Engines, ProfiledEngineTest,
                         ::testing::Values(ExecutionEngine::TreeWalker,
                                           ExecutionEngine::Bytecode),
                         [](const auto &Info) {
                           return Info.param == ExecutionEngine::TreeWalker
                                      ? "tree"
                                      : "vm";
                         });

TEST(Profiler, VmCountsEveryDispatchedInstruction) {
  prof::Profiler P;
  PipelineResult R = profiledRun(ExecutionEngine::Bytecode, P, true);
  ASSERT_TRUE(P.vmProfile());
  uint64_t ByOpcode = 0;
  for (uint64_t N : P.opcodeCounts())
    ByOpcode += N;
  uint64_t ByProto = 0;
  for (uint64_t N : P.protoInstrs())
    ByProto += N;
  EXPECT_EQ(ByOpcode, R.Stats.Steps);
  EXPECT_EQ(ByProto, R.Stats.Steps);
}

//===----------------------------------------------------------------------===//
// ProfileReport
//===----------------------------------------------------------------------===//

TEST(ProfileReport, JoinsPlanSitesWithBothEngines) {
  prof::Profiler TreeP, VmP;
  PipelineResult R1 =
      profiledRun(ExecutionEngine::TreeWalker, TreeP, /*EnableReuse=*/false);
  PipelineResult R2 =
      profiledRun(ExecutionEngine::Bytecode, VmP, /*EnableReuse=*/false);
  ASSERT_TRUE(R1.Optimized && R2.Optimized);

  std::vector<prof::EngineProfile> Engines(2);
  Engines[0] = {"tree", &TreeP, R1.Success, {}, {}};
  Engines[1] = {"vm", &VmP, R2.Success, {}, {}};
  prof::ProfileReport Report(*R1.Ast, *R1.SM, R1.Optimized->Root,
                             R1.Optimized->Plan, R1.Optimized->Reuse,
                             R1.Check ? &R1.Check->Findings : nullptr,
                             std::move(Engines));

  // Every planned site appears in the site table with its class.
  std::set<uint32_t> Reported;
  size_t NumStack = 0, NumRegion = 0;
  for (const prof::ProfileReport::Site &S : Report.sites()) {
    Reported.insert(S.Id);
    NumStack += S.Planned == "stack";
    NumRegion += S.Planned == "region";
    EXPECT_TRUE(S.Loc.isValid());
    EXPECT_GE(R1.SM->lineColumn(S.Loc).Line, 1u);
    EXPECT_FALSE(S.Why.empty());
  }
  size_t PlannedSites = 0;
  for (const ArgArenaDirective &D : R1.Optimized->Plan.Directives)
    for (const auto &[Site, Class] : D.Sites) {
      (void)Class;
      ++PlannedSites;
      EXPECT_TRUE(Reported.count(Site)) << "planned site " << Site
                                        << " missing from the report";
    }
  EXPECT_EQ(NumStack + NumRegion, PlannedSites);

  std::string Json = Report.toJson();
  EXPECT_NE(Json.find("\"schema\": \"eal-profile-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"planned\": \"stack\""), std::string::npos);
  EXPECT_NE(Json.find("\"planned\": \"region\""), std::string::npos);

  // Folded stacks cover both engines with named frames.
  std::string Folded = Report.folded();
  EXPECT_NE(Folded.find("tree;"), std::string::npos);
  EXPECT_NE(Folded.find("vm;"), std::string::npos);
  EXPECT_NE(Folded.find("ps"), std::string::npos);
}

TEST(ProfileReport, DconsSitesReportAsReuse) {
  prof::Profiler TreeP;
  PipelineResult R =
      profiledRun(ExecutionEngine::TreeWalker, TreeP, /*EnableReuse=*/true);
  ASSERT_TRUE(R.Optimized.has_value());

  std::vector<prof::EngineProfile> Engines(1);
  Engines[0] = {"tree", &TreeP, R.Success, {}, {}};
  prof::ProfileReport Report(*R.Ast, *R.SM, R.Optimized->Root,
                             R.Optimized->Plan, R.Optimized->Reuse,
                             R.Check ? &R.Check->Findings : nullptr,
                             std::move(Engines));

  uint64_t ReportedReuses = 0;
  size_t DconsSites = 0;
  for (const prof::ProfileReport::Site &S : Report.sites()) {
    if (S.Planned != "reuse")
      continue;
    ++DconsSites;
    if (const prof::SiteCounters *C = TreeP.site(S.Id))
      ReportedReuses += C->Reuses;
  }
  EXPECT_GT(DconsSites, 0u);
  // The dcons sites of the report account for every runtime reuse.
  EXPECT_EQ(ReportedReuses, R.Stats.DconsReuses);
  // Heap sites carry an explanation from the linter.
  bool SawLintWhy = false;
  for (const prof::ProfileReport::Site &S : Report.sites())
    SawLintWhy |= S.Planned == "heap" && S.Why.rfind("[EAL-O", 0) == 0;
  EXPECT_TRUE(SawLintWhy);
}

} // namespace

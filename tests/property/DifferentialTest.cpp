//===- DifferentialTest.cpp - optimizations preserve semantics --------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// For randomly generated programs, every optimization configuration ×
// every execution engine must compute exactly the value the unoptimized
// tree-walker computes, with arena-free validation enabled (so an unsafe
// allocation plan fails the run instead of silently corrupting it). The
// engines share the heap machinery, so their storage counters must also
// agree configuration by configuration. A final run cross-checks the
// static escape claims against the dynamic oracle.
//
// The Seeds instantiation is the fixed tier-1 sweep. The Fuzz
// instantiation reads EAL_FUZZ_SEEDS (default 1): CI's fuzz-smoke step
// widens it without recompiling (tools/ci.sh).
//
//===----------------------------------------------------------------------===//

#include "ProgramGenerator.h"

#include "driver/Pipeline.h"
#include "lang/AstPrinter.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class DifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DifferentialTest, AllConfigsAndEnginesAgreeWithBaseline) {
  ProgramGenerator Gen(GetParam());
  GenProgram Prog = Gen.generate(3);

  auto Run = [&](bool Reuse, bool Stack, bool Region, ExecutionEngine E) {
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.Engine = E;
    Options.Optimize.EnableReuse = Reuse;
    Options.Optimize.EnableStack = Stack;
    Options.Optimize.EnableRegion = Region;
    Options.Run.ValidateArenaFrees = true;
    return runPipeline(Prog.Source, Options);
  };

  PipelineResult Base = Run(false, false, false, ExecutionEngine::TreeWalker);
  ASSERT_TRUE(Base.Success) << "baseline failed (seed " << GetParam()
                            << "):\n"
                            << Prog.Source << Base.diagnostics();
  for (bool Reuse : {false, true})
    for (bool Stack : {false, true})
      for (bool Region : {false, true}) {
        PipelineResult Tree =
            Run(Reuse, Stack, Region, ExecutionEngine::TreeWalker);
        ASSERT_TRUE(Tree.Success)
            << "config " << Reuse << Stack << Region << " failed (seed "
            << GetParam() << "):\n"
            << Prog.Source << Tree.diagnostics();
        EXPECT_EQ(Tree.RenderedValue, Base.RenderedValue)
            << "MISCOMPILE by config reuse=" << Reuse << " stack=" << Stack
            << " region=" << Region << " (seed " << GetParam() << "):\n"
            << Prog.Source;

        PipelineResult Byte =
            Run(Reuse, Stack, Region, ExecutionEngine::Bytecode);
        ASSERT_TRUE(Byte.Success)
            << "VM config " << Reuse << Stack << Region << " failed (seed "
            << GetParam() << "):\n"
            << Prog.Source << Byte.diagnostics();
        EXPECT_EQ(Byte.RenderedValue, Base.RenderedValue)
            << "ENGINE DIVERGENCE under config reuse=" << Reuse
            << " stack=" << Stack << " region=" << Region << " (seed "
            << GetParam() << "):\n"
            << Prog.Source;
        // Identical storage behaviour engine-to-engine, per config.
        EXPECT_EQ(Byte.Stats.DconsReuses, Tree.Stats.DconsReuses)
            << Prog.Source;
        EXPECT_EQ(Byte.Stats.StackCellsAllocated,
                  Tree.Stats.StackCellsAllocated)
            << Prog.Source;
        EXPECT_EQ(Byte.Stats.RegionCellsAllocated,
                  Tree.Stats.RegionCellsAllocated)
            << Prog.Source;
      }

  // Dynamic escape oracle over the fully optimized program: every static
  // claim the optimizer acted on must hold on this run.
  PipelineOptions Oracle;
  Oracle.Mode = TypeInferenceMode::Monomorphic;
  Oracle.Optimize.EnableReuse = true;
  Oracle.Optimize.EnableStack = true;
  Oracle.Optimize.EnableRegion = true;
  Oracle.Run.ValidateArenaFrees = true;
  Oracle.RunOracle = true;
  PipelineResult Checked = runPipeline(Prog.Source, Oracle);
  ASSERT_TRUE(Checked.Success)
      << "ORACLE REFUTED a claim (seed " << GetParam() << "):\n"
      << Prog.Source << Checked.diagnostics();
  EXPECT_EQ(Checked.RenderedValue, Base.RenderedValue) << Prog.Source;
}

// The why-provenance recorder is an observer: attaching it must not
// change a single optimization decision. Optimize each generated program
// with and without a recorder and require the final program, the
// allocation plan, and the reuse record to render byte-identically
// (docs/EXPLAIN.md).
TEST_P(DifferentialTest, ProvenanceRecorderIsObservationOnly) {
  ProgramGenerator Gen(GetParam());
  GenProgram Prog = Gen.generate(3);

  auto Optimize = [&](bool Explain) {
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.RunProgram = false;
    Options.RunExplain = Explain;
    return runPipeline(Prog.Source, Options);
  };

  PipelineResult Plain = Optimize(false);
  PipelineResult Observed = Optimize(true);
  ASSERT_TRUE(Plain.Success) << Prog.Source << Plain.diagnostics();
  ASSERT_TRUE(Observed.Success) << Prog.Source << Observed.diagnostics();
  ASSERT_TRUE(Plain.Optimized && Observed.Optimized);
  EXPECT_EQ(Plain.Prov, nullptr);
  ASSERT_NE(Observed.Prov, nullptr);

  EXPECT_EQ(printExpr(*Plain.Ast, Plain.Optimized->Root),
            printExpr(*Observed.Ast, Observed.Optimized->Root))
      << "recorder perturbed the optimized program (seed " << GetParam()
      << "):\n"
      << Prog.Source;
  EXPECT_EQ(renderAllocationPlan(*Plain.Ast, Plain.Optimized->Plan),
            renderAllocationPlan(*Observed.Ast, Observed.Optimized->Plan))
      << "recorder perturbed the allocation plan (seed " << GetParam()
      << "):\n"
      << Prog.Source;
  EXPECT_EQ(renderReuseReport(*Plain.Ast, Plain.Optimized->Reuse),
            renderReuseReport(*Observed.Ast, Observed.Optimized->Reuse))
      << "recorder perturbed the reuse transform (seed " << GetParam()
      << "):\n"
      << Prog.Source;
}

// The liveness analysis is an observer too: with its one planner
// consumer (LiveGcPrune) left off, enabling it must not change a single
// byte of output or a single storage counter, on either engine, under
// any optimization configuration. And the dynamic liveness oracle must
// refute none of its dead-site claims on any of these runs
// (docs/LIVENESS.md).
TEST_P(DifferentialTest, LivenessIsObservationOnlyAndClaimsHold) {
  ProgramGenerator Gen(GetParam());
  GenProgram Prog = Gen.generate(3);

  auto Run = [&](bool Reuse, bool Stack, bool Region, ExecutionEngine E,
                 bool Live, bool Oracle) {
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.Engine = E;
    Options.Optimize.EnableReuse = Reuse;
    Options.Optimize.EnableStack = Stack;
    Options.Optimize.EnableRegion = Region;
    Options.Run.ValidateArenaFrees = true;
    Options.RunLive = Live;
    Options.RunLiveOracle = Oracle;
    return runPipeline(Prog.Source, Options);
  };

  for (bool Reuse : {false, true})
    for (bool Stack : {false, true})
      for (bool Region : {false, true}) {
        PipelineResult Plain = Run(Reuse, Stack, Region,
                                   ExecutionEngine::TreeWalker, false, false);
        ASSERT_TRUE(Plain.Success)
            << "config " << Reuse << Stack << Region << " failed (seed "
            << GetParam() << "):\n"
            << Prog.Source << Plain.diagnostics();

        PipelineResult Live = Run(Reuse, Stack, Region,
                                  ExecutionEngine::TreeWalker, true, false);
        ASSERT_TRUE(Live.Success) << Prog.Source << Live.diagnostics();
        EXPECT_EQ(Live.RenderedValue, Plain.RenderedValue)
            << "LIVENESS PERTURBED OUTPUT under config reuse=" << Reuse
            << " stack=" << Stack << " region=" << Region << " (seed "
            << GetParam() << "):\n"
            << Prog.Source;
        EXPECT_EQ(Live.Stats.DconsReuses, Plain.Stats.DconsReuses)
            << Prog.Source;
        EXPECT_EQ(Live.Stats.StackCellsAllocated,
                  Plain.Stats.StackCellsAllocated)
            << Prog.Source;
        EXPECT_EQ(Live.Stats.RegionCellsAllocated,
                  Plain.Stats.RegionCellsAllocated)
            << Prog.Source;

        PipelineResult Byte = Run(Reuse, Stack, Region,
                                  ExecutionEngine::Bytecode, true, false);
        ASSERT_TRUE(Byte.Success) << Prog.Source << Byte.diagnostics();
        EXPECT_EQ(Byte.RenderedValue, Plain.RenderedValue)
            << "LIVENESS PERTURBED THE VM under config reuse=" << Reuse
            << " stack=" << Stack << " region=" << Region << " (seed "
            << GetParam() << "):\n"
            << Prog.Source;

        // The liveness oracle forces the tree-walker; its dead-site
        // claims must survive the concrete run under every config.
        PipelineResult Checked = Run(Reuse, Stack, Region,
                                     ExecutionEngine::TreeWalker, true, true);
        ASSERT_TRUE(Checked.Success) << Prog.Source << Checked.diagnostics();
        ASSERT_NE(Checked.LiveOracle, nullptr);
        EXPECT_TRUE(Checked.LiveOracle->report().Violations.empty())
            << "LIVENESS ORACLE REFUTED a dead-site claim under config reuse="
            << Reuse << " stack=" << Stack << " region=" << Region
            << " (seed " << GetParam() << "):\n"
            << Prog.Source
            << Checked.LiveOracle->report().render(*Checked.SM);
        EXPECT_EQ(Checked.RenderedValue, Plain.RenderedValue) << Prog.Source;
      }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1u, 257u));

// Extra seeds for CI fuzz-smoke runs: EAL_FUZZ_SEEDS widens the sweep
// without a recompile; the default keeps one fresh seed in tier 1.
unsigned fuzzSeedCount() {
  const char *Env = std::getenv("EAL_FUZZ_SEEDS");
  int N = Env ? std::atoi(Env) : 0;
  return N > 0 ? static_cast<unsigned>(N) : 1u;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DifferentialTest,
                         ::testing::Range(900000u,
                                          900000u + fuzzSeedCount()));

} // namespace

//===- DifferentialTest.cpp - optimizations preserve semantics --------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// For randomly generated programs, every optimization configuration ×
// every execution engine must compute exactly the value the unoptimized
// tree-walker computes, with arena-free validation enabled (so an unsafe
// allocation plan fails the run instead of silently corrupting it). The
// engines share the heap machinery, so their storage counters must also
// agree configuration by configuration. A final run cross-checks the
// static escape claims against the dynamic oracle.
//
// The Seeds instantiation is the fixed tier-1 sweep. The Fuzz
// instantiation reads EAL_FUZZ_SEEDS (default 1): CI's fuzz-smoke step
// widens it without recompiling (tools/ci.sh).
//
//===----------------------------------------------------------------------===//

#include "ProgramGenerator.h"

#include "driver/Pipeline.h"
#include "lang/AstPrinter.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class DifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DifferentialTest, AllConfigsAndEnginesAgreeWithBaseline) {
  ProgramGenerator Gen(GetParam());
  GenProgram Prog = Gen.generate(3);

  auto Run = [&](bool Reuse, bool Stack, bool Region, ExecutionEngine E) {
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.Engine = E;
    Options.Optimize.EnableReuse = Reuse;
    Options.Optimize.EnableStack = Stack;
    Options.Optimize.EnableRegion = Region;
    Options.Run.ValidateArenaFrees = true;
    return runPipeline(Prog.Source, Options);
  };

  PipelineResult Base = Run(false, false, false, ExecutionEngine::TreeWalker);
  ASSERT_TRUE(Base.Success) << "baseline failed (seed " << GetParam()
                            << "):\n"
                            << Prog.Source << Base.diagnostics();
  for (bool Reuse : {false, true})
    for (bool Stack : {false, true})
      for (bool Region : {false, true}) {
        PipelineResult Tree =
            Run(Reuse, Stack, Region, ExecutionEngine::TreeWalker);
        ASSERT_TRUE(Tree.Success)
            << "config " << Reuse << Stack << Region << " failed (seed "
            << GetParam() << "):\n"
            << Prog.Source << Tree.diagnostics();
        EXPECT_EQ(Tree.RenderedValue, Base.RenderedValue)
            << "MISCOMPILE by config reuse=" << Reuse << " stack=" << Stack
            << " region=" << Region << " (seed " << GetParam() << "):\n"
            << Prog.Source;

        PipelineResult Byte =
            Run(Reuse, Stack, Region, ExecutionEngine::Bytecode);
        ASSERT_TRUE(Byte.Success)
            << "VM config " << Reuse << Stack << Region << " failed (seed "
            << GetParam() << "):\n"
            << Prog.Source << Byte.diagnostics();
        EXPECT_EQ(Byte.RenderedValue, Base.RenderedValue)
            << "ENGINE DIVERGENCE under config reuse=" << Reuse
            << " stack=" << Stack << " region=" << Region << " (seed "
            << GetParam() << "):\n"
            << Prog.Source;
        // Identical storage behaviour engine-to-engine, per config.
        EXPECT_EQ(Byte.Stats.DconsReuses, Tree.Stats.DconsReuses)
            << Prog.Source;
        EXPECT_EQ(Byte.Stats.StackCellsAllocated,
                  Tree.Stats.StackCellsAllocated)
            << Prog.Source;
        EXPECT_EQ(Byte.Stats.RegionCellsAllocated,
                  Tree.Stats.RegionCellsAllocated)
            << Prog.Source;
      }

  // Dynamic escape oracle over the fully optimized program: every static
  // claim the optimizer acted on must hold on this run.
  PipelineOptions Oracle;
  Oracle.Mode = TypeInferenceMode::Monomorphic;
  Oracle.Optimize.EnableReuse = true;
  Oracle.Optimize.EnableStack = true;
  Oracle.Optimize.EnableRegion = true;
  Oracle.Run.ValidateArenaFrees = true;
  Oracle.RunOracle = true;
  PipelineResult Checked = runPipeline(Prog.Source, Oracle);
  ASSERT_TRUE(Checked.Success)
      << "ORACLE REFUTED a claim (seed " << GetParam() << "):\n"
      << Prog.Source << Checked.diagnostics();
  EXPECT_EQ(Checked.RenderedValue, Base.RenderedValue) << Prog.Source;
}

// The why-provenance recorder is an observer: attaching it must not
// change a single optimization decision. Optimize each generated program
// with and without a recorder and require the final program, the
// allocation plan, and the reuse record to render byte-identically
// (docs/EXPLAIN.md).
TEST_P(DifferentialTest, ProvenanceRecorderIsObservationOnly) {
  ProgramGenerator Gen(GetParam());
  GenProgram Prog = Gen.generate(3);

  auto Optimize = [&](bool Explain) {
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.RunProgram = false;
    Options.RunExplain = Explain;
    return runPipeline(Prog.Source, Options);
  };

  PipelineResult Plain = Optimize(false);
  PipelineResult Observed = Optimize(true);
  ASSERT_TRUE(Plain.Success) << Prog.Source << Plain.diagnostics();
  ASSERT_TRUE(Observed.Success) << Prog.Source << Observed.diagnostics();
  ASSERT_TRUE(Plain.Optimized && Observed.Optimized);
  EXPECT_EQ(Plain.Prov, nullptr);
  ASSERT_NE(Observed.Prov, nullptr);

  EXPECT_EQ(printExpr(*Plain.Ast, Plain.Optimized->Root),
            printExpr(*Observed.Ast, Observed.Optimized->Root))
      << "recorder perturbed the optimized program (seed " << GetParam()
      << "):\n"
      << Prog.Source;
  EXPECT_EQ(renderAllocationPlan(*Plain.Ast, Plain.Optimized->Plan),
            renderAllocationPlan(*Observed.Ast, Observed.Optimized->Plan))
      << "recorder perturbed the allocation plan (seed " << GetParam()
      << "):\n"
      << Prog.Source;
  EXPECT_EQ(renderReuseReport(*Plain.Ast, Plain.Optimized->Reuse),
            renderReuseReport(*Observed.Ast, Observed.Optimized->Reuse))
      << "recorder perturbed the reuse transform (seed " << GetParam()
      << "):\n"
      << Prog.Source;
}

// The liveness analysis is an observer too: with its one planner
// consumer (LiveGcPrune) left off, enabling it must not change a single
// byte of output or a single storage counter, on either engine, under
// any optimization configuration. And the dynamic liveness oracle must
// refute none of its dead-site claims on any of these runs
// (docs/LIVENESS.md).
TEST_P(DifferentialTest, LivenessIsObservationOnlyAndClaimsHold) {
  ProgramGenerator Gen(GetParam());
  GenProgram Prog = Gen.generate(3);

  auto Run = [&](bool Reuse, bool Stack, bool Region, ExecutionEngine E,
                 bool Live, bool Oracle) {
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.Engine = E;
    Options.Optimize.EnableReuse = Reuse;
    Options.Optimize.EnableStack = Stack;
    Options.Optimize.EnableRegion = Region;
    Options.Run.ValidateArenaFrees = true;
    Options.RunLive = Live;
    Options.RunLiveOracle = Oracle;
    return runPipeline(Prog.Source, Options);
  };

  for (bool Reuse : {false, true})
    for (bool Stack : {false, true})
      for (bool Region : {false, true}) {
        PipelineResult Plain = Run(Reuse, Stack, Region,
                                   ExecutionEngine::TreeWalker, false, false);
        ASSERT_TRUE(Plain.Success)
            << "config " << Reuse << Stack << Region << " failed (seed "
            << GetParam() << "):\n"
            << Prog.Source << Plain.diagnostics();

        PipelineResult Live = Run(Reuse, Stack, Region,
                                  ExecutionEngine::TreeWalker, true, false);
        ASSERT_TRUE(Live.Success) << Prog.Source << Live.diagnostics();
        EXPECT_EQ(Live.RenderedValue, Plain.RenderedValue)
            << "LIVENESS PERTURBED OUTPUT under config reuse=" << Reuse
            << " stack=" << Stack << " region=" << Region << " (seed "
            << GetParam() << "):\n"
            << Prog.Source;
        EXPECT_EQ(Live.Stats.DconsReuses, Plain.Stats.DconsReuses)
            << Prog.Source;
        EXPECT_EQ(Live.Stats.StackCellsAllocated,
                  Plain.Stats.StackCellsAllocated)
            << Prog.Source;
        EXPECT_EQ(Live.Stats.RegionCellsAllocated,
                  Plain.Stats.RegionCellsAllocated)
            << Prog.Source;

        PipelineResult Byte = Run(Reuse, Stack, Region,
                                  ExecutionEngine::Bytecode, true, false);
        ASSERT_TRUE(Byte.Success) << Prog.Source << Byte.diagnostics();
        EXPECT_EQ(Byte.RenderedValue, Plain.RenderedValue)
            << "LIVENESS PERTURBED THE VM under config reuse=" << Reuse
            << " stack=" << Stack << " region=" << Region << " (seed "
            << GetParam() << "):\n"
            << Prog.Source;

        // The liveness oracle forces the tree-walker; its dead-site
        // claims must survive the concrete run under every config.
        PipelineResult Checked = Run(Reuse, Stack, Region,
                                     ExecutionEngine::TreeWalker, true, true);
        ASSERT_TRUE(Checked.Success) << Prog.Source << Checked.diagnostics();
        ASSERT_NE(Checked.LiveOracle, nullptr);
        EXPECT_TRUE(Checked.LiveOracle->report().Violations.empty())
            << "LIVENESS ORACLE REFUTED a dead-site claim under config reuse="
            << Reuse << " stack=" << Stack << " region=" << Region
            << " (seed " << GetParam() << "):\n"
            << Prog.Source
            << Checked.LiveOracle->report().render(*Checked.SM);
        EXPECT_EQ(Checked.RenderedValue, Plain.RenderedValue) << Prog.Source;
      }
}

// The speculative tier (docs/SPECULATION.md) re-classifies heap sites
// under runtime guards, with a deopt path that migrates speculative
// cells back to the GC heap. None of that may be user-visible: for
// every seed, both engines must produce byte-identical output with
// speculation off, on, and with a forced deopt (every guard injected to
// fail at its first covered arena close), under arena-free validation.
// The user-visible counters -- reuse hits and the total allocation
// volume -- must not move either (storage-class splits legitimately
// shift heap->region; VM instruction counts legitimately grow by the
// guard opcodes). A final forced-deopt run under the dynamic escape
// oracle must refute nothing: migrated cells are real heap cells.
TEST_P(DifferentialTest, SpeculationIsSemanticsPreserving) {
  ProgramGenerator Gen(GetParam());
  GenProgram Prog = Gen.generate(3);

  enum class SpecMode { Off, On, ForcedDeopt };
  auto Run = [&](ExecutionEngine E, SpecMode Mode, bool Oracle) {
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.Engine = E;
    Options.Optimize.EnableReuse = true;
    Options.Optimize.EnableStack = true;
    Options.Optimize.EnableRegion = true;
    Options.Run.ValidateArenaFrees = true;
    Options.Spec.Enable = Mode != SpecMode::Off;
    // Any profiled allocation makes a site hot: generated programs are
    // small, and we want speculation to actually fire on this corpus.
    Options.Spec.HotMinAllocs = 1;
    if (Mode == SpecMode::ForcedDeopt)
      Options.Spec.Inject.All = true;
    Options.RunOracle = Oracle;
    return runPipeline(Prog.Source, Options);
  };

  PipelineResult Base = Run(ExecutionEngine::TreeWalker, SpecMode::Off, false);
  ASSERT_TRUE(Base.Success) << "baseline failed (seed " << GetParam()
                            << "):\n"
                            << Prog.Source << Base.diagnostics();

  for (SpecMode Mode :
       {SpecMode::Off, SpecMode::On, SpecMode::ForcedDeopt}) {
    const char *ModeName = Mode == SpecMode::Off     ? "off"
                           : Mode == SpecMode::On    ? "on"
                                                     : "forced-deopt";
    PipelineResult Tree = Run(ExecutionEngine::TreeWalker, Mode, false);
    ASSERT_TRUE(Tree.Success)
        << "spec=" << ModeName << " failed (seed " << GetParam() << "):\n"
        << Prog.Source << Tree.diagnostics();
    EXPECT_EQ(Tree.RenderedValue, Base.RenderedValue)
        << "SPECULATION PERTURBED OUTPUT (spec=" << ModeName << ", seed "
        << GetParam() << "):\n"
        << Prog.Source;
    EXPECT_EQ(Tree.Stats.Steps, Base.Stats.Steps) << Prog.Source;
    EXPECT_EQ(Tree.Stats.Applications, Base.Stats.Applications)
        << Prog.Source;
    EXPECT_EQ(Tree.Stats.DconsReuses, Base.Stats.DconsReuses) << Prog.Source;
    EXPECT_EQ(Tree.Stats.totalCellsAllocated(),
              Base.Stats.totalCellsAllocated())
        << "speculation changed the allocation volume (spec=" << ModeName
        << ", seed " << GetParam() << "):\n"
        << Prog.Source;

    PipelineResult Byte = Run(ExecutionEngine::Bytecode, Mode, false);
    ASSERT_TRUE(Byte.Success)
        << "VM spec=" << ModeName << " failed (seed " << GetParam() << "):\n"
        << Prog.Source << Byte.diagnostics();
    EXPECT_EQ(Byte.RenderedValue, Base.RenderedValue)
        << "ENGINE DIVERGENCE under spec=" << ModeName << " (seed "
        << GetParam() << "):\n"
        << Prog.Source;
    EXPECT_EQ(Byte.Stats.DconsReuses, Tree.Stats.DconsReuses) << Prog.Source;
    EXPECT_EQ(Byte.Stats.StackCellsAllocated, Tree.Stats.StackCellsAllocated)
        << Prog.Source;
    EXPECT_EQ(Byte.Stats.RegionCellsAllocated,
              Tree.Stats.RegionCellsAllocated)
        << Prog.Source;
  }

  // Forced-deopt sweep under the dynamic escape oracle: a migrated cell
  // is a heap cell, so even the worst case must refute no static claim.
  PipelineResult Checked =
      Run(ExecutionEngine::TreeWalker, SpecMode::ForcedDeopt, true);
  ASSERT_TRUE(Checked.Success)
      << "ORACLE REFUTED a claim under forced deopt (seed " << GetParam()
      << "):\n"
      << Prog.Source << Checked.diagnostics();
  EXPECT_EQ(Checked.RenderedValue, Base.RenderedValue) << Prog.Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1u, 257u));

// The generator's aliased-argument family (`append l l`, ProgramGenerator
// IntList case 10) exists to exercise the oracle's per-role exemption:
// without it no generated program ever routed one value into two roles
// of the same call, leaving Oracle.cpp's exemption path untested by the
// fuzz corpus. Pin that coverage: across a small fixed corpus, at least
// one run must exempt shared cells, and no run may be refuted.
TEST(AliasCorpus, GeneratorExercisesOracleAliasExemption) {
  uint64_t Exemptions = 0;
  for (uint32_t Seed = 1; Seed <= 64; ++Seed) {
    ProgramGenerator Gen(Seed);
    GenProgram Prog = Gen.generate(3);
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.Optimize.EnableReuse = true;
    Options.Optimize.EnableStack = true;
    Options.Optimize.EnableRegion = true;
    Options.Run.ValidateArenaFrees = true;
    Options.RunOracle = true;
    PipelineResult R = runPipeline(Prog.Source, Options);
    ASSERT_TRUE(R.Success) << "seed " << Seed << ":\n"
                           << Prog.Source << R.diagnostics();
    ASSERT_TRUE(R.Check && R.Check->Oracle);
    EXPECT_TRUE(R.Check->Oracle->Violations.empty())
        << "seed " << Seed << ":\n"
        << Prog.Source << R.Check->render(*R.SM);
    Exemptions += R.Check->Oracle->AliasExemptions;
  }
  EXPECT_GT(Exemptions, 0u)
      << "the aliased-argument family never reached the oracle's "
         "per-role exemption";
}

// Extra seeds for CI fuzz-smoke runs: EAL_FUZZ_SEEDS widens the sweep
// without a recompile; the default keeps one fresh seed in tier 1.
unsigned fuzzSeedCount() {
  const char *Env = std::getenv("EAL_FUZZ_SEEDS");
  int N = Env ? std::atoi(Env) : 0;
  return N > 0 ? static_cast<unsigned>(N) : 1u;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DifferentialTest,
                         ::testing::Range(900000u,
                                          900000u + fuzzSeedCount()));

} // namespace

//===- DifferentialTest.cpp - optimizations preserve semantics --------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// For randomly generated programs, every optimization configuration must
// compute exactly the value the unoptimized program computes, with
// arena-free validation enabled (so an unsafe allocation plan fails the
// run instead of silently corrupting it).
//
//===----------------------------------------------------------------------===//

#include "ProgramGenerator.h"

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class DifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DifferentialTest, AllConfigsAgreeWithBaseline) {
  ProgramGenerator Gen(GetParam());
  GenProgram Prog = Gen.generate(3);

  auto Run = [&](bool Reuse, bool Stack, bool Region) {
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.Optimize.EnableReuse = Reuse;
    Options.Optimize.EnableStack = Stack;
    Options.Optimize.EnableRegion = Region;
    Options.Run.ValidateArenaFrees = true;
    return runPipeline(Prog.Source, Options);
  };

  PipelineResult Base = Run(false, false, false);
  ASSERT_TRUE(Base.Success) << "baseline failed (seed " << GetParam()
                            << "):\n"
                            << Prog.Source << Base.diagnostics();
  for (bool Reuse : {false, true})
    for (bool Stack : {false, true})
      for (bool Region : {false, true}) {
        PipelineResult Opt = Run(Reuse, Stack, Region);
        ASSERT_TRUE(Opt.Success)
            << "config " << Reuse << Stack << Region << " failed (seed "
            << GetParam() << "):\n"
            << Prog.Source << Opt.diagnostics();
        EXPECT_EQ(Opt.RenderedValue, Base.RenderedValue)
            << "MISCOMPILE by config reuse=" << Reuse << " stack=" << Stack
            << " region=" << Region << " (seed " << GetParam() << "):\n"
            << Prog.Source;
      }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1u, 61u));

} // namespace

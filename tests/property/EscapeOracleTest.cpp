//===- EscapeOracleTest.cpp - analysis safety vs a runtime oracle -----------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Operationalizes the §3.5 safety claim: whenever the abstract analysis
// says the top p spines of a parameter never escape, then in *no* actual
// run may a cons cell of those spines be reachable from the call's
// result. The oracle runs randomly generated, well-typed programs on the
// real heap, tags the argument's spine cells by pointer identity, and
// checks reachability of the result against the analysis verdict.
//
//===----------------------------------------------------------------------===//

#include "ProgramGenerator.h"

#include "TestUtil.h"
#include "escape/EscapeAnalyzer.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <set>

using namespace eal;
using namespace eal::test;

namespace {

/// Cells of each top spine of \p V: Levels[0] = top 1st spine, etc.
void collectSpineLevels(RtValue V,
                        std::vector<std::set<const ConsCell *>> &Levels) {
  std::vector<RtValue> Level = {V};
  while (true) {
    std::set<const ConsCell *> Cells;
    std::vector<RtValue> Next;
    for (RtValue L : Level)
      for (RtValue Cur = L; Cur.isCons(); Cur = Cur.cell()->Cdr) {
        Cells.insert(Cur.cell());
        if (Cur.cell()->Car.isCons())
          Next.push_back(Cur.cell()->Car);
      }
    if (Cells.empty())
      break;
    Levels.push_back(std::move(Cells));
    Level = std::move(Next);
  }
}

/// Everything reachable from \p V (through cells and closure
/// environments).
void collectReachable(RtValue V, std::set<const ConsCell *> &Cells,
                      std::set<const EnvFrame *> &Frames) {
  switch (V.kind()) {
  case RtValueKind::Int:
  case RtValueKind::Bool:
  case RtValueKind::Nil:
    return;
  case RtValueKind::Cons:
  case RtValueKind::Pair: {
    const ConsCell *Cell = V.cell();
    if (!Cells.insert(Cell).second)
      return;
    collectReachable(Cell->Car, Cells, Frames);
    collectReachable(Cell->Cdr, Cells, Frames);
    return;
  }
  case RtValueKind::Closure: {
    const RtClosure *C = V.closure();
    for (RtValue P : C->Partial)
      collectReachable(P, Cells, Frames);
    for (const EnvFrame *F = C->Env.get(); F; F = F->Parent.get()) {
      if (!Frames.insert(F).second)
        break;
      for (const auto &Slot : F->Slots)
        collectReachable(Slot.second, Cells, Frames);
    }
    return;
  }
  }
}

struct OracleTarget {
  std::string Fn;
  std::vector<GenType> Params;
};

class EscapeOracleTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EscapeOracleTest, AnalysisOverapproximatesRuntimeEscape) {
  ProgramGenerator Gen(GetParam());
  // callBinding below runs the tree-walker on this thread's stack (no
  // big-stack thread), and ASan's redzones inflate the recursive eval
  // frames: keep generated tail loops shallow enough for both.
  Gen.TailLoopBase = 50;
  Gen.TailLoopSpread = 100;
  GenProgram Prog = Gen.generate(3);

  Frontend FE;
  ASSERT_TRUE(FE.parseAndType(Prog.Source, TypeInferenceMode::Monomorphic))
      << "generator produced an ill-typed program (seed " << GetParam()
      << "):\n"
      << Prog.Source << "\n"
      << FE.diagText();

  // Both the spine-aware analysis and the whole-object baseline must be
  // sound; the oracle refutes either.
  EscapeAnalyzer Analyzer(FE.Ast, *FE.Typed, FE.Diags);
  EscapeAnalyzer Baseline(FE.Ast, *FE.Typed, FE.Diags, 512,
                          EscapeAnalysisMode::WholeObject);

  // Targets: the generated functions plus the prelude list functions.
  std::vector<OracleTarget> Targets;
  for (const GenFunction &F : Prog.Functions)
    Targets.push_back({F.Name, F.Params});
  Targets.push_back({"append", {GenType::IntList, GenType::IntList}});
  Targets.push_back({"rev", {GenType::IntList}});
  Targets.push_back({"take", {GenType::Int, GenType::IntList}});

  for (const OracleTarget &Target : Targets) {
    for (unsigned I = 0; I != Target.Params.size(); ++I) {
      if (genTypeSpines(Target.Params[I]) == 0)
        continue;
      auto PE = Analyzer.globalEscape(FE.Ast.intern(Target.Fn), I);
      ASSERT_TRUE(PE.has_value()) << Target.Fn;
      unsigned Protected = PE->protectedTopSpines();
      // The baseline's claims must never be stronger than the precise
      // analysis's (it is the same semantics, coarser grading)...
      auto BPE = Baseline.globalEscape(FE.Ast.intern(Target.Fn), I);
      ASSERT_TRUE(BPE.has_value());
      EXPECT_LE(BPE->protectedTopSpines(), Protected)
          << Target.Fn << " param " << (I + 1) << " (seed " << GetParam()
          << ")";
      // ...so refuting the precise claim below covers both.
      if (Protected == 0)
        continue; // no claim to refute

      // Several runs with different random arguments. The literal text
      // buffers must outlive parsing only, but keep them alive for error
      // messages.
      std::vector<std::unique_ptr<std::string>> LitBuffers;
      for (unsigned Trial = 0; Trial != 3; ++Trial) {
        // Build fresh argument literals.
        std::vector<const Expr *> ArgExprs;
        for (GenType T : Target.Params) {
          LitBuffers.push_back(std::make_unique<std::string>(
              GenProgram::literalOf(T, Gen.rng())));
          Parser P(*LitBuffers.back(), FE.Ast, FE.Diags);
          const Expr *E = P.parseExpr();
          ASSERT_NE(E, nullptr) << *LitBuffers.back();
          ArgExprs.push_back(E);
        }
        Interpreter::Options Opts;
        Opts.HeapCapacity = 1 << 18; // never collect: cell identity stable
        Interpreter Interp(FE.Ast, *FE.Typed, nullptr, FE.Diags, Opts);
        std::vector<RtValue> ArgValues;
        auto Result = Interp.callBinding(FE.Ast.intern(Target.Fn), ArgExprs,
                                         &ArgValues);
        ASSERT_TRUE(Result.has_value())
            << Target.Fn << " failed at run time (seed " << GetParam()
            << "):\n"
            << Prog.Source << FE.diagText();

        std::vector<std::set<const ConsCell *>> Levels;
        collectSpineLevels(ArgValues[I], Levels);
        std::set<const ConsCell *> Reach;
        std::set<const EnvFrame *> Frames;
        collectReachable(*Result, Reach, Frames);

        // The claim: no cell of the top `Protected` spines of argument I
        // is reachable from the result.
        for (unsigned L = 0; L != Protected && L < Levels.size(); ++L)
          for (const ConsCell *Cell : Levels[L])
            EXPECT_EQ(Reach.count(Cell), 0u)
                << "UNSOUND: " << Target.Fn << " param " << (I + 1)
                << " claims top " << Protected
                << " spines protected, but a level-" << (L + 1)
                << " cell is reachable from the result (seed "
                << GetParam() << ")\n"
                << Prog.Source;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscapeOracleTest,
                         ::testing::Range(1u, 81u));

} // namespace

//===- ExamplesParityTest.cpp - engines × optimizations agree --------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Every shipped example must compute the same value on the tree-walking
// interpreter and the bytecode VM, with the optimizer fully on and fully
// off: the storage optimizations are allowed to move cells between
// allocation classes, never to change the program's meaning.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace eal;

namespace {

std::vector<std::filesystem::path> exampleFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(
           EAL_SOURCE_DIR "/examples/nml"))
    if (Entry.path().extension() == ".nml")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(ExamplesParity, EnginesAndOptimizationsAgreeOnEveryExample) {
  auto Files = exampleFiles();
  ASSERT_FALSE(Files.empty());
  for (const auto &Path : Files) {
    std::string Source = slurp(Path);
    // stats.nml documents itself as a prelude program in its header.
    bool Stdlib = Source.find("--stdlib") != std::string::npos;

    std::string Expected;
    for (ExecutionEngine Engine :
         {ExecutionEngine::TreeWalker, ExecutionEngine::Bytecode}) {
      for (bool Optimize : {true, false}) {
        PipelineOptions Options;
        Options.IncludeStdlib = Stdlib;
        Options.Engine = Engine;
        Options.Optimize.EnableReuse = Optimize;
        Options.Optimize.EnableStack = Optimize;
        Options.Optimize.EnableRegion = Optimize;
        PipelineResult R = runPipeline(Source, Options);
        std::string Label =
            Path.filename().string() +
            (Engine == ExecutionEngine::Bytecode ? " [vm" : " [interp") +
            (Optimize ? ", opt]" : ", no-opt]");
        ASSERT_TRUE(R.Success) << Label << ": " << R.diagnostics();
        ASSERT_FALSE(R.RenderedValue.empty()) << Label;
        if (Expected.empty())
          Expected = R.RenderedValue;
        else
          EXPECT_EQ(R.RenderedValue, Expected) << Label;
      }
    }
  }
}

} // namespace

//===- ProgramGenerator.h - Random well-typed nml programs -------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random, well-typed, *terminating* nml programs for property
/// testing. Programs have the shape
///
///   letrec <prelude of known list functions>; g0 ...; g1 ...; ... in e
///
/// where each generated gi is non-recursive and may call only the prelude
/// and earlier gj (a DAG), so termination is structural. car/cdr are
/// always guarded by a null test. Types are concrete (int, bool,
/// int list, int list list): the programs are monomorphic by
/// construction, matching the paper's base language.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_TESTS_PROPERTY_PROGRAMGENERATOR_H
#define EAL_TESTS_PROPERTY_PROGRAMGENERATOR_H

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace eal::test {

/// The concrete types the generator uses.
enum class GenType : uint8_t {
  Int,
  IntList,
  IntListList,
  IntPair, ///< (int, int)
  IntFun,  ///< int -> int (first-class function values)
};

inline unsigned genTypeSpines(GenType T) {
  switch (T) {
  case GenType::Int:
  case GenType::IntPair:
  case GenType::IntFun:
    return 0;
  case GenType::IntList:
    return 1;
  case GenType::IntListList:
    return 2;
  }
  return 0;
}

/// One generated function's signature.
struct GenFunction {
  std::string Name;
  std::vector<GenType> Params;
  GenType Result;
};

/// A generated program plus its metadata.
struct GenProgram {
  std::string Source;
  std::vector<GenFunction> Functions; ///< generated gi only (not prelude)

  /// Builds a literal expression of type \p T (fresh structure).
  static std::string literalOf(GenType T, std::mt19937 &Rng) {
    std::uniform_int_distribution<int> Val(0, 99);
    std::uniform_int_distribution<int> Len(0, 3);
    switch (T) {
    case GenType::Int:
      return std::to_string(Val(Rng));
    case GenType::IntList: {
      int N = Len(Rng);
      std::string Out = "[";
      for (int I = 0; I != N; ++I) {
        if (I)
          Out += ", ";
        Out += std::to_string(Val(Rng));
      }
      return Out + "]";
    }
    case GenType::IntListList: {
      int N = Len(Rng);
      std::string Out = "[";
      for (int I = 0; I != N; ++I) {
        if (I)
          Out += ", ";
        Out += literalOf(GenType::IntList, Rng);
      }
      return Out + "]";
    }
    case GenType::IntPair:
      return "(" + std::to_string(Val(Rng)) + ", " +
             std::to_string(Val(Rng)) + ")";
    case GenType::IntFun:
      // A fresh closure literal; 'w' cannot collide with p<i> params.
      return "lambda(w). w + " + std::to_string(Val(Rng));
    }
    return "0";
  }
};

/// The generator.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint32_t Seed) : Rng(Seed) {}

  /// Depth of generated `count` tail loops: TailLoopBase plus up to
  /// TailLoopSpread more. Harnesses that run the tree-walker on the
  /// plain test thread (no big-stack thread, e.g. the escape oracle's
  /// direct Interpreter calls) should lower these: its non-eliminated
  /// tail calls need C++ stack, and ASan redzones inflate each frame.
  unsigned TailLoopBase = 200;
  unsigned TailLoopSpread = 800;

  GenProgram generate(unsigned NumFunctions = 3) {
    GenProgram P;
    std::string Source = "letrec\n";
    Source += prelude();

    for (unsigned I = 0; I != NumFunctions; ++I) {
      GenFunction F;
      // Built by += rather than operator+ chains: GCC 12's -Wrestrict
      // misfires on the temporaries at -O2.
      F.Name = "g";
      F.Name += std::to_string(I);
      unsigned NumParams = 1 + Rng() % 2;
      for (unsigned J = 0; J != NumParams; ++J)
        F.Params.push_back(randomParamType(/*AllowInt=*/J > 0));
      F.Result = randomResultType();

      Earlier = &P.Functions; // functions defined so far are callable
      Source += ";\n  ";
      Source += F.Name;
      for (unsigned J = 0; J != NumParams; ++J) {
        Source += " p";
        Source += std::to_string(J);
      }
      Source += " = ";
      Source += genBody(F);
      P.Functions.push_back(F);
    }
    Earlier = nullptr;

    // Drive with the last function applied to literals (keeps everything
    // reachable for the type checker).
    Source += "\nin ";
    Source += P.Functions.back().Name;
    for (GenType T : P.Functions.back().Params) {
      Source += " ";
      Source += paren(GenProgram::literalOf(T, Rng));
    }
    Source += "\n";
    P.Source = Source;
    return P;
  }

  std::mt19937 &rng() { return Rng; }

private:
  static std::string paren(const std::string &S) { return "(" + S + ")"; }

  static std::string prelude() {
    return R"(  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil
          else append (rev (cdr l)) (cons (car l) nil);
  take n l = if n = 0 then nil else if (null l) then nil
             else cons (car l) (take (n - 1) (cdr l));
  suml l = if (null l) then 0 else car l + suml (cdr l);
  inc n = n + 1;
  mapi f l = if (null l) then nil
             else cons (f (car l)) (mapi f (cdr l));
  compose f g = lambda(x). f (g x);
  count n acc = if n = 0 then acc else count (n - 1) (acc + 1);
  sumt l acc = if (null l) then acc else sumt (cdr l) (acc + car l);
  len l = if (null l) then 0 else 1 + len (cdr l);
  hd d l = if (null l) then d else car l)";
  }

  /// Parameter types: the three data types, plus first-class functions
  /// (exercises higher-order calls and captured environments).
  GenType randomParamType(bool AllowInt) {
    switch (Rng() % (AllowInt ? 5 : 4)) {
    case 0:
      return GenType::IntList;
    case 1:
      return GenType::IntListList;
    case 2:
      return GenType::IntPair;
    case 3:
      return GenType::IntFun;
    default:
      return GenType::Int;
    }
  }

  /// Result types: anything printable (no bare closures, whose rendering
  /// is not part of the engines' contract).
  GenType randomResultType() {
    switch (Rng() % 4) {
    case 0:
      return GenType::IntList;
    case 1:
      return GenType::IntListList;
    case 2:
      return GenType::IntPair;
    default:
      return GenType::Int;
    }
  }

  /// The body of one generated function: either a plain expression or a
  /// structurally recursive one (recurses on `cdr p0`, so termination is
  /// still guaranteed).
  std::string genBody(const GenFunction &F) {
    bool CanSelfRec =
        F.Params[0] == GenType::IntList &&
        (F.Result == GenType::Int || F.Result == GenType::IntList ||
         F.Result == GenType::IntListList);
    if (!CanSelfRec || Rng() % 2)
      return genExpr(F, F.Result, /*Depth=*/3);

    std::string Rec = "(" + F.Name + " (cdr p0)";
    for (size_t J = 1; J != F.Params.size(); ++J)
      Rec += " " + paren(genExpr(F, F.Params[J], 1));
    Rec += ")";
    std::string Base = paren(genExpr(F, F.Result, 2));
    std::string Step;
    switch (F.Result) {
    case GenType::Int:
      Step = "(car p0 + " + Rec + ")";
      break;
    case GenType::IntList:
      Step = Rng() % 2 ? "(cons (car p0) " + Rec + ")"
                       : "(append " + Rec + " (cons (car p0) nil))";
      break;
    default: // IntListList
      Step = "(cons (cons (car p0) nil) " + Rec + ")";
      break;
    }
    return "if (null p0) then " + Base + " else " + Step;
  }

  /// A saturated call to an earlier generated function returning \p T,
  /// with recursively generated arguments; empty if none is available.
  std::string callEarlier(const GenFunction &F, GenType T, unsigned Depth) {
    if (!Earlier || Earlier->empty() || Depth == 0)
      return "";
    std::vector<const GenFunction *> Matches;
    for (const GenFunction &G : *Earlier)
      if (G.Result == T)
        Matches.push_back(&G);
    if (Matches.empty())
      return "";
    const GenFunction *G = Matches[Rng() % Matches.size()];
    std::string Out = "(";
    Out += G->Name;
    for (GenType PT : G->Params) {
      Out += " ";
      Out += paren(genExpr(F, PT, Depth - 1));
    }
    Out += ")";
    return Out;
  }

  /// A parameter of function \p F with type \p T, if any.
  std::string paramOf(const GenFunction &F, GenType T) {
    std::vector<std::string> Matches;
    for (size_t I = 0; I != F.Params.size(); ++I)
      if (F.Params[I] == T) {
        std::string P = "p";
        P += std::to_string(I);
        Matches.push_back(std::move(P));
      }
    if (Matches.empty())
      return "";
    return Matches[Rng() % Matches.size()];
  }

  /// Generates an expression of type \p T using F's parameters, depth
  /// bounded.
  std::string genExpr(const GenFunction &F, GenType T, unsigned Depth) {
    // At depth 0, only leaves.
    if (Depth == 0) {
      std::string P = paramOf(F, T);
      if (!P.empty() && Rng() % 2)
        return P;
      return GenProgram::literalOf(T, Rng);
    }
    switch (T) {
    case GenType::Int:
      switch (Rng() % 13) {
      case 0: {
        std::string P = paramOf(F, GenType::Int);
        if (!P.empty())
          return P;
        return GenProgram::literalOf(T, Rng);
      }
      case 1:
        return paren(genExpr(F, GenType::Int, Depth - 1) + " + " +
                     genExpr(F, GenType::Int, Depth - 1));
      case 2: {
        // Guarded car of a list.
        std::string L = genExpr(F, GenType::IntList, Depth - 1);
        return paren("if (null " + paren(L) + ") then " +
                     genExpr(F, GenType::Int, 0) + " else car " + paren(L));
      }
      case 3:
        return paren("suml " + paren(genExpr(F, GenType::IntList,
                                             Depth - 1)));
      case 4: {
        // Through a pair (the tuple extension).
        std::string A = genExpr(F, GenType::Int, Depth - 1);
        std::string B = genExpr(F, GenType::Int, Depth - 1);
        return paren((Rng() % 2 ? "fst " : "snd ") + paren("(" + A + ", " +
                                                           B + ")"));
      }
      case 5: {
        std::string Call = callEarlier(F, GenType::Int, Depth);
        if (!Call.empty())
          return Call;
        return genExpr(F, GenType::Int, Depth - 1);
      }
      case 6:
        // Apply a first-class function value.
        return paren(paren(genExpr(F, GenType::IntFun, Depth - 1)) + " " +
                     paren(genExpr(F, GenType::Int, Depth - 1)));
      case 7: {
        std::string P = genExpr(F, GenType::IntPair, Depth - 1);
        return paren((Rng() % 2 ? "fst " : "snd ") + paren(P));
      }
      case 8:
        // Deep tail recursion (count) or a tail-recursive fold (sumt):
        // the engines must agree at depths where naive frames would blow
        // up a fixed stack.
        if (Rng() % 2)
          return paren("count " +
                       std::to_string(TailLoopBase + Rng() % TailLoopSpread) +
                       " " + paren(genExpr(F, GenType::Int, 0)));
        return paren("sumt " + paren(genExpr(F, GenType::IntList,
                                             Depth - 1)) + " 0");
      case 9:
        // Dead-data family: a spine-only consumer — the list is walked
        // in full but every element it computed goes unread.
        return paren("len " + paren(genExpr(F, GenType::IntList, Depth - 1)));
      case 10:
        // Dead-data family: only the head of the computed list is
        // demanded; the tail (and everything it cost) is dead.
        return paren("hd " + paren(genExpr(F, GenType::Int, 0)) + " " +
                     paren(genExpr(F, GenType::IntList, Depth - 1)));
      case 11:
        // Dead-data family: a computed-but-undemanded pair component —
        // the fst list is built, threaded, and never touched.
        return paren("snd (" + genExpr(F, GenType::IntList, Depth - 1) +
                     ", " + genExpr(F, GenType::Int, Depth - 1) + ")");
      default:
        return paren("if " + genBool(F, Depth - 1) + " then " +
                     genExpr(F, GenType::Int, Depth - 1) + " else " +
                     genExpr(F, GenType::Int, Depth - 1));
      }
    case GenType::IntList:
      switch (Rng() % 12) {
      case 0: {
        std::string P = paramOf(F, T);
        if (!P.empty())
          return P;
        return GenProgram::literalOf(T, Rng);
      }
      case 1:
        return paren("cons " + paren(genExpr(F, GenType::Int, Depth - 1)) +
                     " " + paren(genExpr(F, GenType::IntList, Depth - 1)));
      case 2: {
        std::string L = genExpr(F, GenType::IntList, Depth - 1);
        return paren("if (null " + paren(L) + ") then nil else cdr " +
                     paren(L));
      }
      case 3:
        return paren("append " +
                     paren(genExpr(F, GenType::IntList, Depth - 1)) + " " +
                     paren(genExpr(F, GenType::IntList, Depth - 1)));
      case 4:
        return paren("rev " + paren(genExpr(F, GenType::IntList, Depth - 1)));
      case 5: {
        // Guarded car of a list of lists.
        std::string L = genExpr(F, GenType::IntListList, Depth - 1);
        return paren("if (null " + paren(L) + ") then nil else car " +
                     paren(L));
      }
      case 6: {
        // Through a pair: snd (n, list).
        std::string A = genExpr(F, GenType::Int, Depth - 1);
        std::string B = genExpr(F, GenType::IntList, Depth - 1);
        return paren("snd (" + A + ", " + B + ")");
      }
      case 7: {
        std::string Call = callEarlier(F, GenType::IntList, Depth);
        if (!Call.empty())
          return Call;
        return genExpr(F, GenType::IntList, Depth - 1);
      }
      case 8:
        return paren("mapi " + paren(genExpr(F, GenType::IntFun,
                                             Depth - 1)) +
                     " " + paren(genExpr(F, GenType::IntList, Depth - 1)));
      case 9:
        // Dead-data family: a partially consumed chain — only a short
        // prefix of whatever the subexpression built is kept.
        return paren("take " + std::to_string(1 + Rng() % 3) + " " +
                     paren(genExpr(F, GenType::IntList, Depth - 1)));
      case 10: {
        // Aliased argument roles: one list value routed into both
        // argument roles of the same call (the `append l l` shape).
        // append's first role carries a protected-prefix claim while
        // its second legitimately escapes, so the dynamic oracle must
        // exempt the shared cells rather than refute the claim
        // (Oracle.cpp's per-role exemption; OracleReport's
        // AliasExemptions counts the corpus exercising it).
        std::string P = paramOf(F, GenType::IntList);
        if (!P.empty() && Rng() % 2)
          return paren("append " + P + " " + P);
        return paren("let aa = " +
                     paren(genExpr(F, GenType::IntList, Depth - 1)) +
                     " in append aa aa");
      }
      default:
        return paren("if " + genBool(F, Depth - 1) + " then " +
                     genExpr(F, GenType::IntList, Depth - 1) + " else " +
                     genExpr(F, GenType::IntList, Depth - 1));
      }
    case GenType::IntListList:
      switch (Rng() % 5) {
      case 0: {
        std::string P = paramOf(F, T);
        if (!P.empty())
          return P;
        return GenProgram::literalOf(T, Rng);
      }
      case 1:
        return paren("cons " +
                     paren(genExpr(F, GenType::IntList, Depth - 1)) + " " +
                     paren(genExpr(F, GenType::IntListList, Depth - 1)));
      case 2: {
        std::string L = genExpr(F, GenType::IntListList, Depth - 1);
        return paren("if (null " + paren(L) + ") then nil else cdr " +
                     paren(L));
      }
      case 3: {
        std::string Call = callEarlier(F, GenType::IntListList, Depth);
        if (!Call.empty())
          return Call;
        return genExpr(F, GenType::IntListList, Depth - 1);
      }
      default:
        return paren("if " + genBool(F, Depth - 1) + " then " +
                     genExpr(F, GenType::IntListList, Depth - 1) + " else " +
                     genExpr(F, GenType::IntListList, Depth - 1));
      }
    case GenType::IntPair:
      switch (Rng() % 4) {
      case 0: {
        std::string P = paramOf(F, T);
        if (!P.empty())
          return P;
        return GenProgram::literalOf(T, Rng);
      }
      case 1:
        return "(" + genExpr(F, GenType::Int, Depth - 1) + ", " +
               genExpr(F, GenType::Int, Depth - 1) + ")";
      case 2: {
        std::string Call = callEarlier(F, GenType::IntPair, Depth);
        if (!Call.empty())
          return Call;
        return genExpr(F, GenType::IntPair, Depth - 1);
      }
      default:
        return paren("if " + genBool(F, Depth - 1) + " then " +
                     genExpr(F, GenType::IntPair, Depth - 1) + " else " +
                     genExpr(F, GenType::IntPair, Depth - 1));
      }
    case GenType::IntFun:
      switch (Rng() % 4) {
      case 0: {
        std::string P = paramOf(F, T);
        if (!P.empty())
          return P;
        return "inc";
      }
      case 1:
        // A closure literal that may capture this function's int params
        // (an escaping environment when the closure is returned onward).
        return paren("lambda(w). w + " +
                     paren(genExpr(F, GenType::Int, 0)));
      case 2:
        return paren("compose " +
                     paren(genExpr(F, GenType::IntFun, Depth - 1)) + " " +
                     paren(genExpr(F, GenType::IntFun, Depth - 1)));
      default:
        return "inc";
      }
    }
    return GenProgram::literalOf(T, Rng);
  }

  std::string genBool(const GenFunction &F, unsigned Depth) {
    switch (Rng() % 3) {
    case 0:
      return paren(genExpr(F, GenType::Int, Depth) + " < " +
                   genExpr(F, GenType::Int, Depth));
    case 1:
      return paren("null " + paren(genExpr(F, GenType::IntList, Depth)));
    default:
      return paren(genExpr(F, GenType::Int, Depth) + " = " +
                   genExpr(F, GenType::Int, Depth));
    }
  }

  std::mt19937 Rng;
  /// Functions already generated (callable from later ones); null
  /// outside generate().
  const std::vector<GenFunction> *Earlier = nullptr;
};

} // namespace eal::test

#endif // EAL_TESTS_PROPERTY_PROGRAMGENERATOR_H

//===- FailureInjectionTest.cpp - defence against bad plans ------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Injects deliberately *wrong* optimizer outputs into the runtime and
// checks that the safety nets catch them: an allocation plan that puts
// escaping cells in an arena must trip ValidateArenaFrees, and a bogus
// DCONS must fail loudly rather than corrupt memory.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "lang/AstUtils.h"
#include "opt/AllocPlanner.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class FailureInjectionTest : public ::testing::Test {
protected:
  Frontend FE;
};

TEST_F(FailureInjectionTest, EscapingArenaCellIsDetectedAtFree) {
  // id returns its argument: its spine ESCAPES. Force a malicious plan
  // that nevertheless puts the literal's cells into id's activation
  // arena. Validation must refuse at the activation's return.
  ASSERT_TRUE(FE.parseAndType("letrec id x = x in id [1, 2, 3]"))
      << FE.diagText();

  // Find the call (the letrec body) and the literal's cons sites.
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  const Expr *Call = Letrec->body();
  std::vector<const Expr *> Args;
  (void)uncurryCall(Call, Args);
  ASSERT_EQ(Args.size(), 1u);

  AllocationPlan Evil;
  ArgArenaDirective D;
  D.CallAppId = Call->id();
  D.ArgIndex = 0;
  D.Callee = FE.Ast.intern("id");
  D.ProtectedSpines = 1; // a lie
  forEachExpr(Args[0], [&](const Expr *E) {
    const Expr *Head = nullptr;
    std::vector<const Expr *> CallArgs;
    const Expr *Callee = uncurryCall(E, CallArgs);
    const auto *Prim = dyn_cast<PrimExpr>(Callee);
    if (Prim && Prim->op() == PrimOp::Cons && CallArgs.size() == 2)
      D.Sites.emplace(E->id(), ArenaSiteClass::Stack);
    (void)Head;
  });
  ASSERT_EQ(D.Sites.size(), 3u);
  Evil.Directives.push_back(std::move(D));
  Evil.index();

  Interpreter::Options Opts;
  Opts.ValidateArenaFrees = true;
  Interpreter Interp(FE.Ast, *FE.Typed, &Evil, FE.Diags, Opts);
  auto Result = Interp.run();
  EXPECT_FALSE(Result.has_value());
  EXPECT_NE(FE.Diags.render(FE.SM).find("arena cell still reachable"),
            std::string::npos)
      << FE.diagText();
}

TEST_F(FailureInjectionTest, SamePlanWithoutValidationStillRuns) {
  // Sanity check of the injection harness: without validation the evil
  // plan executes (the cells are recycled after id returns, which is the
  // unsoundness the validator exists to catch; nothing reuses them here,
  // so the value is still intact when rendered).
  ASSERT_TRUE(FE.parseAndType("letrec id x = x in id [1, 2, 3]"))
      << FE.diagText();
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  const Expr *Call = Letrec->body();
  std::vector<const Expr *> Args;
  (void)uncurryCall(Call, Args);

  AllocationPlan Evil;
  ArgArenaDirective D;
  D.CallAppId = Call->id();
  D.ArgIndex = 0;
  D.Callee = FE.Ast.intern("id");
  D.ProtectedSpines = 1;
  forEachExpr(Args[0], [&](const Expr *E) {
    std::vector<const Expr *> CallArgs;
    const Expr *Callee = uncurryCall(E, CallArgs);
    const auto *Prim = dyn_cast<PrimExpr>(Callee);
    if (Prim && Prim->op() == PrimOp::Cons && CallArgs.size() == 2)
      D.Sites.emplace(E->id(), ArenaSiteClass::Stack);
  });
  Evil.Directives.push_back(std::move(D));
  Evil.index();

  Interpreter Interp(FE.Ast, *FE.Typed, &Evil, FE.Diags,
                     Interpreter::Options());
  auto Result = Interp.run();
  ASSERT_TRUE(Result.has_value()) << FE.diagText();
  EXPECT_EQ(Interp.stats().StackCellsAllocated, 3u);
}

TEST_F(FailureInjectionTest, TheRealPlannerNeverArenasEscapingArgs) {
  // The honest planner must produce NO directive for id's argument.
  ASSERT_TRUE(FE.parseAndType("letrec id x = x in id [1, 2, 3]"))
      << FE.diagText();
  EscapeAnalyzer Analyzer(FE.Ast, *FE.Typed, FE.Diags);
  AllocPlanner Planner(FE.Ast, *FE.Typed, Analyzer);
  AllocationPlan Plan = Planner.run();
  EXPECT_TRUE(Plan.Directives.empty());
}

TEST_F(FailureInjectionTest, HandConstructedDconsOnSharedCellIsVisible) {
  // A manually written dcons on a *shared* list silently mutates the
  // sharer — exactly why the transformation needs the sharing analysis.
  // This documents the hazard the analysis prevents.
  const char *Source = R"(
letrec
  suml l = if (null l) then 0 else car l + suml (cdr l);
  f x = dcons x 99 nil
in let shared = [1, 2, 3] in (suml (f shared)) + suml shared
)";
  ASSERT_TRUE(FE.parseAndType(Source)) << FE.diagText();
  Interpreter Interp(FE.Ast, *FE.Typed, nullptr, FE.Diags,
                     Interpreter::Options());
  auto Result = Interp.run();
  ASSERT_TRUE(Result.has_value()) << FE.diagText();
  // f destroys shared's head: suml (f shared) = 99 and suml shared now
  // sees [99] instead of [1,2,3] — the mutation is observable.
  EXPECT_EQ(Result->intValue(), 99 + 99);
}

TEST_F(FailureInjectionTest, AnalyzerIterationBudgetIsEnforced) {
  ASSERT_TRUE(FE.parseAndType(partitionSortSource())) << FE.diagText();
  // An absurdly small budget trips the limit and reports it.
  EscapeAnalyzer Analyzer(FE.Ast, *FE.Typed, FE.Diags, /*MaxRounds=*/1);
  auto PE = Analyzer.globalEscape(FE.Ast.intern("ps"), 0);
  (void)PE;
  EXPECT_TRUE(Analyzer.hitIterationLimit());
  EXPECT_TRUE(FE.Diags.hasErrors());
}

} // namespace

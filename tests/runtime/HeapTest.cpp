//===- HeapTest.cpp - heap, GC, and arena unit tests -------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include <gtest/gtest.h>

#include <vector>

using namespace eal;

namespace {

class HeapTest : public ::testing::Test {
protected:
  RuntimeStats Stats;
  std::vector<RtValue> Roots;

  Heap makeHeap(size_t Capacity, bool AllowGrowth) {
    Heap H(Stats, Heap::Options{Capacity, AllowGrowth, 0.2});
    H.setRootScanner([this](Marker &M) {
      for (RtValue V : Roots)
        M.value(V);
    });
    return H;
  }
};

TEST_F(HeapTest, AllocationInitializesCells) {
  Heap H = makeHeap(16, false);
  ConsCell *C = H.allocateHeap();
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(C->Car.isNil());
  EXPECT_TRUE(C->Cdr.isNil());
  EXPECT_EQ(C->Class, CellClass::Heap);
  EXPECT_EQ(C->State, CellState::Live);
  EXPECT_EQ(Stats.HeapCellsAllocated, 1u);
  EXPECT_EQ(H.liveHeapCells(), 1u);
}

TEST_F(HeapTest, CollectionFreesUnreachableOnly) {
  Heap H = makeHeap(16, false);
  ConsCell *Kept = H.allocateHeap();
  Roots.push_back(RtValue::makeCons(Kept));
  for (int I = 0; I != 8; ++I)
    (void)H.allocateHeap(); // garbage
  H.collect();
  EXPECT_EQ(Stats.CellsSwept, 8u);
  EXPECT_EQ(H.liveHeapCells(), 1u);
  EXPECT_EQ(Kept->State, CellState::Live);
}

TEST_F(HeapTest, CollectionTracesThroughChains) {
  Heap H = makeHeap(16, false);
  ConsCell *A = H.allocateHeap();
  ConsCell *B = H.allocateHeap();
  A->Cdr = RtValue::makeCons(B);
  Roots.push_back(RtValue::makeCons(A));
  H.collect();
  EXPECT_EQ(H.liveHeapCells(), 2u);
  EXPECT_GE(Stats.CellsMarked, 2u);
}

TEST_F(HeapTest, ExhaustionTriggersCollection) {
  Heap H = makeHeap(8, false);
  // Allocate-and-drop forever: GC keeps it alive.
  for (int I = 0; I != 100; ++I)
    ASSERT_NE(H.allocateHeap(), nullptr) << "iteration " << I;
  EXPECT_GE(Stats.GcRuns, 1u);
  EXPECT_EQ(H.capacity(), 8u) << "no growth expected";
}

TEST_F(HeapTest, ExhaustionWithLiveDataFailsWithoutGrowth) {
  Heap H = makeHeap(8, false);
  std::vector<ConsCell *> Cells;
  for (int I = 0; I != 8; ++I) {
    ConsCell *C = H.allocateHeap();
    Roots.push_back(RtValue::makeCons(C));
    Cells.push_back(C);
  }
  EXPECT_EQ(H.allocateHeap(), nullptr);
}

TEST_F(HeapTest, GrowthDoublesCapacity) {
  Heap H = makeHeap(8, true);
  for (int I = 0; I != 9; ++I)
    Roots.push_back(RtValue::makeCons(H.allocateHeap()));
  EXPECT_GT(H.capacity(), 8u);
  EXPECT_GE(Stats.HeapGrowths, 1u);
}

//===----------------------------------------------------------------------===//
// Arenas.
//===----------------------------------------------------------------------===//

TEST_F(HeapTest, ArenaCellsAreNotSwept) {
  Heap H = makeHeap(16, false);
  size_t Arena = H.createArena();
  ConsCell *C = H.allocateInArena(Arena, CellClass::Stack);
  ASSERT_NE(C, nullptr);
  H.collect(); // C has no roots, but arena cells are not collected
  EXPECT_EQ(C->State, CellState::Live);
  EXPECT_EQ(Stats.CellsSwept, 0u);
  H.freeArena(Arena);
}

TEST_F(HeapTest, ArenaContentsKeepHeapCellsAlive) {
  Heap H = makeHeap(16, false);
  size_t Arena = H.createArena();
  ConsCell *InArena = H.allocateInArena(Arena, CellClass::Region);
  ConsCell *OnHeap = H.allocateHeap();
  InArena->Car = RtValue::makeCons(OnHeap);
  H.collect();
  EXPECT_EQ(OnHeap->State, CellState::Live) << "reachable via arena cell";
  EXPECT_EQ(H.liveHeapCells(), 1u);
  H.freeArena(Arena);
}

TEST_F(HeapTest, FreeArenaRecyclesCells) {
  Heap H = makeHeap(4, false);
  size_t Arena = H.createArena();
  for (int I = 0; I != 4; ++I)
    ASSERT_NE(H.allocateInArena(Arena, CellClass::Stack), nullptr);
  // Pool exhausted; nothing heap-collectable.
  EXPECT_EQ(H.allocateHeap(), nullptr);
  H.freeArena(Arena);
  EXPECT_EQ(Stats.StackArenaFrees, 1u);
  EXPECT_EQ(Stats.StackCellsFreed, 4u);
  // The spliced cells are allocatable again.
  EXPECT_NE(H.allocateHeap(), nullptr);
}

TEST_F(HeapTest, ArenaStatsSeparateStackAndRegion) {
  Heap H = makeHeap(16, false);
  size_t Arena = H.createArena();
  (void)H.allocateInArena(Arena, CellClass::Stack);
  (void)H.allocateInArena(Arena, CellClass::Region);
  (void)H.allocateInArena(Arena, CellClass::Region);
  H.freeArena(Arena);
  EXPECT_EQ(Stats.StackCellsFreed, 1u);
  EXPECT_EQ(Stats.RegionCellsFreed, 2u);
  EXPECT_EQ(Stats.RegionBulkFrees, 1u);
}

TEST_F(HeapTest, ArenaHandlesAreRecycled) {
  Heap H = makeHeap(16, false);
  size_t A = H.createArena();
  H.freeArena(A);
  size_t B = H.createArena();
  EXPECT_EQ(A, B);
  H.freeArena(B);
}

TEST_F(HeapTest, ArenaReachabilityDetection) {
  Heap H = makeHeap(16, false);
  size_t Arena = H.createArena();
  ConsCell *C = H.allocateInArena(Arena, CellClass::Stack);
  EXPECT_FALSE(H.arenaIsReachable(Arena));
  Roots.push_back(RtValue::makeCons(C));
  EXPECT_TRUE(H.arenaIsReachable(Arena));
  Roots.clear();
  EXPECT_FALSE(H.arenaIsReachable(Arena));
  // Reachable through a heap chain rooted elsewhere.
  ConsCell *Chain = H.allocateHeap();
  Chain->Cdr = RtValue::makeCons(C);
  Roots.push_back(RtValue::makeCons(Chain));
  EXPECT_TRUE(H.arenaIsReachable(Arena));
  H.freeArena(Arena);
}

TEST_F(HeapTest, ArenaReachableThroughAnotherArena) {
  Heap H = makeHeap(16, false);
  size_t Inner = H.createArena();
  size_t Outer = H.createArena();
  ConsCell *InnerCell = H.allocateInArena(Inner, CellClass::Stack);
  ConsCell *OuterCell = H.allocateInArena(Outer, CellClass::Stack);
  OuterCell->Car = RtValue::makeCons(InnerCell);
  // Freeing Inner while Outer still points at it must be detected.
  EXPECT_TRUE(H.arenaIsReachable(Inner));
  EXPECT_FALSE(H.arenaIsReachable(Outer));
  H.freeArena(Outer);
  EXPECT_FALSE(H.arenaIsReachable(Inner));
  H.freeArena(Inner);
}

} // namespace

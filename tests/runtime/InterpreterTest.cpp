//===- InterpreterTest.cpp - Evaluator and GC behaviour --------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace eal;
using namespace eal::test;

namespace {

class InterpreterTest : public ::testing::Test {
protected:
  Frontend FE;
  std::unique_ptr<Interpreter> Interp;

  std::optional<RtValue> evalSource(const std::string &Source,
                                    Interpreter::Options Opts = {}) {
    if (!FE.parseAndType(Source))
      return std::nullopt;
    Interp = std::make_unique<Interpreter>(FE.Ast, *FE.Typed, nullptr,
                                           FE.Diags, Opts);
    return Interp->run();
  }
};

//===----------------------------------------------------------------------===//
// Core evaluation.
//===----------------------------------------------------------------------===//

TEST_F(InterpreterTest, Arithmetic) {
  auto V = evalSource("1 + 2 * 3 - 4");
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 3);
}

TEST_F(InterpreterTest, DivAndMod) {
  auto V = evalSource("(17 div 5) * 10 + (17 mod 5)");
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 32);
}

TEST_F(InterpreterTest, Comparison) {
  auto V = evalSource("if 3 <= 4 then 1 else 0");
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 1);
}

TEST_F(InterpreterTest, LetAndLambda) {
  auto V = evalSource("let add = lambda(a b). a + b in add 20 22");
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 42);
}

TEST_F(InterpreterTest, LetrecFactorial) {
  auto V = evalSource(
      "letrec fact n = if n = 0 then 1 else n * fact (n - 1) in fact 10");
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 3628800);
}

TEST_F(InterpreterTest, ListLiteralRenders) {
  auto V = evalSource("[1, 2, 3]");
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(Interp->render(*V), "[1, 2, 3]");
}

TEST_F(InterpreterTest, ConsCarCdrNull) {
  auto V = evalSource("car (cdr (1 :: 2 :: 3 :: nil))");
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 2);
}

TEST_F(InterpreterTest, HigherOrderMap) {
  const char *Source = R"(
letrec map f l = if (null l) then nil
                 else cons (f (car l)) (map f (cdr l))
in map (lambda(x). x * x) [1, 2, 3, 4]
)";
  auto V = evalSource(Source);
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(Interpreter::toIntVector(*V),
            (std::vector<int64_t>{1, 4, 9, 16}));
}

TEST_F(InterpreterTest, PartialApplicationOfUserFunction) {
  auto V = evalSource(
      "letrec add a b = a + b in let inc = add 1 in inc 41");
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 42);
}

TEST_F(InterpreterTest, PrimAsValue) {
  // cons passed as a function value to a fold.
  const char *Source = R"(
letrec foldr f z l = if (null l) then z
                     else f (car l) (foldr f z (cdr l))
in foldr cons nil [1, 2, 3]
)";
  auto V = evalSource(Source);
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(Interpreter::toIntVector(*V), (std::vector<int64_t>{1, 2, 3}));
}

//===----------------------------------------------------------------------===//
// The paper's programs compute correct results.
//===----------------------------------------------------------------------===//

TEST_F(InterpreterTest, PartitionSortSorts) {
  auto V = evalSource(partitionSortSource());
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(Interpreter::toIntVector(*V),
            (std::vector<int64_t>{1, 2, 3, 4, 5, 7}));
}

TEST_F(InterpreterTest, ReverseReverses) {
  auto V = evalSource(reverseSource());
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(Interpreter::toIntVector(*V),
            (std::vector<int64_t>{5, 4, 3, 2, 1}));
}

TEST_F(InterpreterTest, MapPairDuplicates) {
  auto V = evalSource(mapPairSource());
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(Interp->render(*V), "[[1, 1], [3, 3], [5, 5]]");
}

//===----------------------------------------------------------------------===//
// DCONS semantics.
//===----------------------------------------------------------------------===//

TEST_F(InterpreterTest, DconsReusesCellInPlace) {
  auto V = evalSource(
      "letrec f x = if (null x) then nil else dcons x 9 nil in f [1, 2]");
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(Interpreter::toIntVector(*V), (std::vector<int64_t>{9}));
  EXPECT_EQ(Interp->stats().DconsReuses, 1u);
}

TEST_F(InterpreterTest, DconsOnNilIsAnError) {
  auto V = evalSource("dcons nil 1 nil");
  EXPECT_FALSE(V.has_value());
  EXPECT_TRUE(FE.Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Garbage collection.
//===----------------------------------------------------------------------===//

TEST_F(InterpreterTest, GcReclaimsGarbageInSmallHeap) {
  // Builds and discards many short lists; a 64-cell heap with growth
  // disabled only survives if collection works.
  const char *Source = R"(
letrec
  build n = if n = 0 then nil else cons n (build (n - 1));
  sum l = if (null l) then 0 else car l + sum (cdr l);
  loop i acc = if i = 0 then acc
               else loop (i - 1) (acc + sum (build 10))
in loop 100 0
)";
  Interpreter::Options Opts;
  Opts.HeapCapacity = 64;
  Opts.AllowHeapGrowth = false;
  auto V = evalSource(Source, Opts);
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 100 * 55);
  EXPECT_GE(Interp->stats().GcRuns, 1u);
  EXPECT_GT(Interp->stats().CellsSwept, 0u);
}

TEST_F(InterpreterTest, GcTracesThroughClosures) {
  // After mk returns, its let frame is gone: the list `keep` is reachable
  // only through the returned closure's environment. Churning then forces
  // collections; a GC that fails to trace closures would reclaim it.
  const char *Source = R"(
letrec
  build n = if n = 0 then nil else cons n (build (n - 1));
  sum l = if (null l) then 0 else car l + sum (cdr l);
  mk u = let keep = build 10 in lambda(z). sum keep + z;
  churn i = if i = 0 then 0
            else churn (i - (sum (build 8) - sum (build 8)) - 1)
in let get = mk 0 in get (churn 50)
)";
  Interpreter::Options Opts;
  Opts.HeapCapacity = 64;
  Opts.AllowHeapGrowth = false;
  auto V = evalSource(Source, Opts);
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 55);
  EXPECT_GE(Interp->stats().GcRuns, 1u);
}

TEST_F(InterpreterTest, HeapGrowsWhenEverythingLive) {
  // All cells stay live: growth must kick in (or the run would fail).
  const char *Source = R"(
letrec build n = if n = 0 then nil else cons n (build (n - 1))
in build 200
)";
  Interpreter::Options Opts;
  Opts.HeapCapacity = 64;
  Opts.AllowHeapGrowth = true;
  auto V = evalSource(Source, Opts);
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_GE(Interp->stats().HeapGrowths, 1u);
}

TEST_F(InterpreterTest, OutOfMemoryWithoutGrowth) {
  const char *Source = R"(
letrec build n = if n = 0 then nil else cons n (build (n - 1))
in build 200
)";
  Interpreter::Options Opts;
  Opts.HeapCapacity = 64;
  Opts.AllowHeapGrowth = false;
  auto V = evalSource(Source, Opts);
  EXPECT_FALSE(V.has_value());
  EXPECT_TRUE(FE.Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Runtime errors.
//===----------------------------------------------------------------------===//

TEST_F(InterpreterTest, CarOfNilFails) {
  EXPECT_FALSE(evalSource("car nil").has_value());
  EXPECT_TRUE(FE.Diags.hasErrors());
}

TEST_F(InterpreterTest, DivisionByZeroFails) {
  EXPECT_FALSE(evalSource("1 div 0").has_value());
  EXPECT_TRUE(FE.Diags.hasErrors());
}

TEST_F(InterpreterTest, FuelLimitStopsDivergence) {
  Interpreter::Options Opts;
  Opts.MaxSteps = 10000;
  // The diverging loop recurses natively until the fuel runs out, which
  // needs more than a default test-thread stack under sanitizers; run it
  // the way the CLI does, on the big-stack thread.
  ASSERT_TRUE(FE.parseAndType("letrec loop x = loop x in loop 1"))
      << FE.diagText();
  Interp = std::make_unique<Interpreter>(FE.Ast, *FE.Typed, nullptr, FE.Diags,
                                         Opts);
  auto V = Interp->runOnLargeStack();
  EXPECT_FALSE(V.has_value());
  EXPECT_TRUE(FE.Diags.hasErrors());
}

TEST_F(InterpreterTest, DeepRecursionOnLargeStack) {
  const char *Source = R"(
letrec build n = if n = 0 then nil else cons n (build (n - 1));
       len l = if (null l) then 0 else 1 + len (cdr l)
in len (build 50000)
)";
  ASSERT_TRUE(FE.parseAndType(Source)) << FE.diagText();
  Interp = std::make_unique<Interpreter>(FE.Ast, *FE.Typed, nullptr, FE.Diags,
                                         Interpreter::Options());
  auto V = Interp->runOnLargeStack();
  ASSERT_TRUE(V.has_value()) << FE.diagText();
  EXPECT_EQ(V->intValue(), 50000);
}

} // namespace

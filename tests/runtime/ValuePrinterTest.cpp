//===- ValuePrinterTest.cpp - value rendering edge cases ----------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "runtime/ValuePrinter.h"

#include "runtime/Frame.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

using namespace eal;

namespace {

class ValuePrinterTest : public ::testing::Test {
protected:
  RuntimeStats Stats;
  Heap TheHeap{Stats, Heap::Options{256, false, 0.2}};

  RtValue list(std::initializer_list<int64_t> Xs) {
    RtValue Tail = RtValue::makeNil();
    std::vector<int64_t> V(Xs);
    for (auto It = V.rbegin(); It != V.rend(); ++It) {
      ConsCell *C = TheHeap.allocateHeap();
      C->Car = RtValue::makeInt(*It);
      C->Cdr = Tail;
      Tail = RtValue::makeCons(C);
    }
    return Tail;
  }
};

TEST_F(ValuePrinterTest, Scalars) {
  EXPECT_EQ(renderValue(RtValue::makeInt(-7)), "-7");
  EXPECT_EQ(renderValue(RtValue::makeBool(true)), "true");
  EXPECT_EQ(renderValue(RtValue::makeBool(false)), "false");
  EXPECT_EQ(renderValue(RtValue::makeNil()), "[]");
}

TEST_F(ValuePrinterTest, ListsAndNesting) {
  EXPECT_EQ(renderValue(list({1, 2, 3})), "[1, 2, 3]");
  ConsCell *Outer = TheHeap.allocateHeap();
  Outer->Car = list({1, 2});
  Outer->Cdr = RtValue::makeNil();
  EXPECT_EQ(renderValue(RtValue::makeCons(Outer)), "[[1, 2]]");
}

TEST_F(ValuePrinterTest, PairsRender) {
  ConsCell *P = TheHeap.allocateHeap();
  P->Car = RtValue::makeInt(1);
  P->Cdr = list({2, 3});
  EXPECT_EQ(renderValue(RtValue::makePair(P)), "(1, [2, 3])");
}

TEST_F(ValuePrinterTest, ImproperListRendersDotted) {
  ConsCell *C = TheHeap.allocateHeap();
  C->Car = RtValue::makeInt(1);
  C->Cdr = RtValue::makeInt(2); // not a list tail
  EXPECT_EQ(renderValue(RtValue::makeCons(C)), "[1 . 2]");
}

TEST_F(ValuePrinterTest, TruncationCapsLongOrCyclicLists) {
  RtValue L = list({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(renderValue(L, 3), "[1, 2, 3, ...]");
  // A cyclic spine must terminate through the element cap, not hang.
  ConsCell *A = TheHeap.allocateHeap();
  A->Car = RtValue::makeInt(9);
  A->Cdr = RtValue::makeCons(A);
  std::string Text = renderValue(RtValue::makeCons(A), 5);
  EXPECT_NE(Text.find("..."), std::string::npos);
}

TEST_F(ValuePrinterTest, ClosuresAreOpaque) {
  RtClosure C;
  EXPECT_EQ(renderValue(RtValue::makeClosure(&C)), "<fun>");
}

TEST_F(ValuePrinterTest, IntVectorConversion) {
  EXPECT_EQ(valueToIntVector(list({4, 5})), (std::vector<int64_t>{4, 5}));
  EXPECT_TRUE(valueToIntVector(RtValue::makeNil()).empty());
  // Non-int elements: mismatch reported as empty.
  ConsCell *C = TheHeap.allocateHeap();
  C->Car = RtValue::makeBool(true);
  C->Cdr = RtValue::makeNil();
  EXPECT_TRUE(valueToIntVector(RtValue::makeCons(C)).empty());
}

} // namespace

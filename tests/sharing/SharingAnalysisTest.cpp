//===- SharingAnalysisTest.cpp - Theorem 2 and Appendix A.2 ----------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sharing/SharingAnalysis.h"

#include "TestUtil.h"
#include "lang/AstUtils.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class SharingTest : public ::testing::Test {
protected:
  Frontend FE;
  std::optional<ProgramEscapeReport> Report;
  std::unique_ptr<EscapeAnalyzer> Analyzer;

  bool setup(const char *Source) {
    if (!FE.parseAndType(Source))
      return false;
    Analyzer = std::make_unique<EscapeAnalyzer>(FE.Ast, *FE.Typed, FE.Diags);
    Report = Analyzer->analyzeProgram();
    return true;
  }

  SharingAnalysis sharing() {
    return SharingAnalysis(FE.Ast, *FE.Typed, *Report);
  }
};

//===----------------------------------------------------------------------===//
// Appendix A.2: PS and SPLIT result sharing.
//===----------------------------------------------------------------------===//

TEST_F(SharingTest, PartitionSortResultTopSpineUnshared) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  SharingAnalysis SA = sharing();
  // "For (PS e), the top spine of the result list is not shared."
  auto SR = SA.resultSharing(FE.Ast.intern("ps"));
  ASSERT_TRUE(SR.has_value());
  EXPECT_EQ(SR->ResultSpines, 1u);
  EXPECT_EQ(SR->UnsharedTopSpines, 1u);
}

TEST_F(SharingTest, SplitResultTopSpineUnshared) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  SharingAnalysis SA = sharing();
  // "For (SPLIT e1 e2 e3 e4), the top spine of the result is not shared"
  // — d_f = 2, max{esc} = 1 (l and h escape entirely), so top 1 unshared.
  auto SR = SA.resultSharing(FE.Ast.intern("split"));
  ASSERT_TRUE(SR.has_value());
  EXPECT_EQ(SR->ResultSpines, 2u);
  EXPECT_EQ(SR->UnsharedTopSpines, 1u);
}

TEST_F(SharingTest, AppendResultSharingWorstCase) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  SharingAnalysis SA = sharing();
  // append: esc = {0 (x's spine stripped), 1 (all of y)}; d_f = 1, so
  // clause 2 gives 0 unshared top spines (y may be shared and escapes).
  auto SR = SA.resultSharing(FE.Ast.intern("append"));
  ASSERT_TRUE(SR.has_value());
  EXPECT_EQ(SR->UnsharedTopSpines, 0u);
}

TEST_F(SharingTest, AppendResultSharingWithUnsharedArgs) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  SharingAnalysis SA = sharing();
  // Clause 1: if both arguments are fully unshared (u = 1 each),
  // min{esc_i, d_i − u_i} = 0 for both, so the whole result is unshared.
  unsigned ArgU[] = {1, 1};
  auto SR = SA.resultSharing(FE.Ast.intern("append"), ArgU);
  ASSERT_TRUE(SR.has_value());
  EXPECT_EQ(SR->UnsharedTopSpines, 1u);
}

//===----------------------------------------------------------------------===//
// Structural u inference.
//===----------------------------------------------------------------------===//

TEST_F(SharingTest, ListLiteralsAreFullyUnshared) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  SharingAnalysis SA = sharing();
  // The program body is ps [5,2,7,1,3,4]; the literal argument is fresh.
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(Letrec->body(), Args);
  ASSERT_TRUE(isa<VarExpr>(Callee));
  ASSERT_EQ(Args.size(), 1u);
  EXPECT_EQ(SA.unsharedTopSpines(Args[0]), 1u);
}

TEST_F(SharingTest, NestedLiteralFullyUnshared) {
  ASSERT_TRUE(setup(mapPairSource())) << FE.diagText();
  SharingAnalysis SA = sharing();
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  std::vector<const Expr *> Args;
  (void)uncurryCall(Letrec->body(), Args);
  ASSERT_EQ(Args.size(), 2u);
  // [[1,2],[3,4],[5,6]] has two spines, both fresh.
  EXPECT_EQ(SA.unsharedTopSpines(Args[1]), 2u);
}

TEST_F(SharingTest, VariablesHaveUnknownSharing) {
  ASSERT_TRUE(setup("letrec id x = x in id [1, 2]")) << FE.diagText();
  SharingAnalysis SA = sharing();
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  const auto *Id = cast<LambdaExpr>(Letrec->bindings()[0].Value);
  EXPECT_EQ(SA.unsharedTopSpines(Id->body()), 0u);
}

TEST_F(SharingTest, CallResultSharingPropagates) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  SharingAnalysis SA = sharing();
  // u(ps [..]) = 1 via clause 1: the call's result is fresh on top.
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  EXPECT_EQ(SA.unsharedTopSpines(Letrec->body()), 1u);
}

//===----------------------------------------------------------------------===//
// Reuse budgets (§6).
//===----------------------------------------------------------------------===//

TEST_F(SharingTest, ReuseBudgetForAppendFirstArg) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  SharingAnalysis SA = sharing();
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  const Expr *Body = Letrec->body(); // ps [...] — unshared result
  // append could reuse min{u, d − esc} = min{1, 1−0} = 1 top spine of a
  // (ps ...) argument in parameter 1.
  EXPECT_EQ(SA.reusableTopSpines(FE.Ast.intern("append"), 0, Body), 1u);
  // ...but 0 spines of parameter 2 (y escapes entirely).
  EXPECT_EQ(SA.reusableTopSpines(FE.Ast.intern("append"), 1, Body), 0u);
}

} // namespace

//===- DeoptMigrationTest.cpp - deopt migration re-homes cells exactly ------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// The speculative tier's deopt path (docs/SPECULATION.md) calls
// Heap::migrateArenaToHeap to re-home every cell of a speculatively
// placed arena onto the GC heap. The contract under test: each migrated
// cell keeps its AllocSeq — the (pointer, stamp) identity the dynamic
// oracle tracks — while its storage class becomes Heap and its SiteId is
// re-tagged to the base site (SpecSiteBit cleared); the emptied arena's
// eventual free reclaims nothing; and migrated cells become ordinary
// mark-sweep residents, including chains crossing arena -> GC-heap and
// cells shared with frames that did not speculate.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include <gtest/gtest.h>

#include <vector>

using namespace eal;

namespace {

class DeoptMigrationTest : public ::testing::Test {
protected:
  RuntimeStats Stats;
  std::vector<RtValue> Roots;

  Heap makeHeap(size_t Capacity) {
    Heap H(Stats, Heap::Options{Capacity, /*AllowGrowth=*/false, 0.2});
    H.setRootScanner([this](Marker &M) {
      for (RtValue V : Roots)
        M.value(V);
    });
    return H;
  }
};

// Speculative placement tags the cell with SpecSiteBit; migration clears
// the bit, flips the class to Heap, and leaves AllocSeq alone.
TEST_F(DeoptMigrationTest, MigrationKeepsAllocSeqAndRetagsSite) {
  Heap H = makeHeap(32);
  size_t Arena = H.createArena();
  ConsCell *A = H.allocateInArena(Arena, CellClass::Region, /*SiteId=*/7,
                                  /*Speculative=*/true);
  ConsCell *B = H.allocateInArena(Arena, CellClass::Stack, /*SiteId=*/9,
                                  /*Speculative=*/true);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(A->SiteId, 7u | SpecSiteBit) << "speculative placement tags";
  EXPECT_EQ(B->SiteId, 9u | SpecSiteBit);
  EXPECT_EQ(baseSiteId(A->SiteId), 7u);
  uint64_t SeqA = A->AllocSeq, SeqB = B->AllocSeq;
  EXPECT_NE(SeqA, SeqB) << "stamps identify allocations";

  EXPECT_EQ(H.migrateArenaToHeap(Arena), 2u);
  EXPECT_EQ(A->AllocSeq, SeqA) << "migration must not re-stamp";
  EXPECT_EQ(B->AllocSeq, SeqB);
  EXPECT_EQ(A->Class, CellClass::Heap);
  EXPECT_EQ(B->Class, CellClass::Heap);
  EXPECT_EQ(A->SiteId, 7u) << "SpecSiteBit cleared, base site kept";
  EXPECT_EQ(B->SiteId, 9u);
  EXPECT_EQ(A->State, CellState::Live);
  EXPECT_EQ(H.liveHeapCells(), 2u) << "migrated cells are heap residents";

  // The owning activation still frees the (now empty) arena on exit;
  // that free must reclaim nothing.
  H.freeArena(Arena);
  EXPECT_EQ(Stats.RegionCellsFreed, 0u);
  EXPECT_EQ(Stats.StackCellsFreed, 0u);
  EXPECT_EQ(H.liveHeapCells(), 2u);
}

// Migration is not an allocation: the birth counters stay with the
// original storage class, only the live-heap census moves.
TEST_F(DeoptMigrationTest, MigrationDoesNotCountAsHeapAllocation) {
  Heap H = makeHeap(32);
  size_t Arena = H.createArena();
  for (int I = 0; I != 4; ++I)
    ASSERT_NE(H.allocateInArena(Arena, CellClass::Region, 3, true), nullptr);
  EXPECT_EQ(Stats.RegionCellsAllocated, 4u);
  EXPECT_EQ(Stats.HeapCellsAllocated, 0u);
  EXPECT_EQ(H.migrateArenaToHeap(Arena), 4u);
  EXPECT_EQ(Stats.HeapCellsAllocated, 0u)
      << "deopt must not inflate the allocation counters";
  EXPECT_EQ(Stats.RegionCellsAllocated, 4u);
  EXPECT_GE(Stats.PeakLiveHeapCells, 4u) << "but the census sees them";
  H.freeArena(Arena);
}

// A spine that crosses from the speculative arena into the GC heap and
// back: after migration the whole chain is ordinary heap data — rooted,
// it survives collection intact; unrooted, all of it is reclaimed.
TEST_F(DeoptMigrationTest, ChainsCrossingArenaAndHeapSurviveMigration) {
  Heap H = makeHeap(32);
  size_t Arena = H.createArena();
  ConsCell *SpecHead = H.allocateInArena(Arena, CellClass::Region, 1, true);
  ConsCell *GcMiddle = H.allocateHeap(2);
  ConsCell *SpecTail = H.allocateInArena(Arena, CellClass::Region, 1, true);
  SpecHead->Car = RtValue::makeInt(10);
  SpecHead->Cdr = RtValue::makeCons(GcMiddle);
  GcMiddle->Car = RtValue::makeInt(20);
  GcMiddle->Cdr = RtValue::makeCons(SpecTail);
  SpecTail->Car = RtValue::makeInt(30);

  EXPECT_EQ(H.migrateArenaToHeap(Arena), 2u);
  H.freeArena(Arena);

  Roots.push_back(RtValue::makeCons(SpecHead));
  H.collect();
  EXPECT_EQ(H.liveHeapCells(), 3u) << "rooted chain survives collection";
  ASSERT_EQ(SpecHead->Cdr.kind(), RtValueKind::Cons);
  EXPECT_EQ(SpecHead->Cdr.cell()->Cdr.cell()->Car.intValue(), 30)
      << "links survive migration byte-for-byte";

  Roots.clear();
  H.collect();
  EXPECT_EQ(H.liveHeapCells(), 0u)
      << "unrooted migrated cells are ordinary garbage";
  EXPECT_EQ(Stats.CellsSwept, 3u);
}

// A cell shared between a speculated frame and a non-speculated one:
// the non-speculated arena references a speculative cell. Deopt migrates
// only the speculative arena; the other arena's wholesale free must not
// touch the migrated cell, which stays valid for as long as anything
// (here, a root) reaches it.
TEST_F(DeoptMigrationTest, SharedCellsAcrossFramesOutliveBothArenas) {
  Heap H = makeHeap(32);
  size_t SpecArena = H.createArena();
  size_t PlainArena = H.createArena();
  ConsCell *Shared = H.allocateInArena(SpecArena, CellClass::Region, 5, true);
  Shared->Car = RtValue::makeInt(99);
  ConsCell *Holder =
      H.allocateInArena(PlainArena, CellClass::Stack, 6, false);
  Holder->Car = RtValue::makeCons(Shared);
  EXPECT_EQ(Holder->SiteId, 6u) << "non-speculative placement is untagged";
  uint64_t SharedSeq = Shared->AllocSeq;

  EXPECT_EQ(H.migrateArenaToHeap(SpecArena), 1u);
  H.freeArena(SpecArena);
  EXPECT_EQ(Shared->AllocSeq, SharedSeq);
  EXPECT_EQ(Shared->Class, CellClass::Heap);

  // The non-speculated frame exits normally: its own cell is reclaimed,
  // the migrated cell is not on its chain.
  Roots.push_back(RtValue::makeCons(Shared));
  H.freeArena(PlainArena);
  EXPECT_EQ(Stats.StackCellsFreed, 1u);
  EXPECT_EQ(Shared->State, CellState::Live);
  H.collect();
  EXPECT_EQ(Shared->Car.intValue(), 99) << "shared cell survives both frames";
  EXPECT_EQ(H.liveHeapCells(), 1u);
}

// Migrated slots recycle like any other heap slot: once reclaimed and
// reallocated, the slot carries a fresh AllocSeq, so a recorded
// (pointer, stamp) pair from before the deopt no longer matches — the
// property the dynamic oracle's classification relies on.
TEST_F(DeoptMigrationTest, RecycledMigratedSlotsGetFreshStamps) {
  Heap H = makeHeap(4);
  size_t Arena = H.createArena();
  ConsCell *C = H.allocateInArena(Arena, CellClass::Region, 8, true);
  uint64_t OldSeq = C->AllocSeq;
  H.migrateArenaToHeap(Arena);
  H.freeArena(Arena);
  H.collect(); // unrooted: the migrated cell is swept
  EXPECT_EQ(H.liveHeapCells(), 0u);
  // Exhaust the tiny pool so the slot comes back around.
  ConsCell *Reused = nullptr;
  for (int I = 0; I != 4; ++I) {
    ConsCell *N = H.allocateHeap(11);
    ASSERT_NE(N, nullptr);
    if (N == C)
      Reused = N;
  }
  ASSERT_NE(Reused, nullptr) << "slot should recycle in a 4-cell pool";
  EXPECT_NE(Reused->AllocSeq, OldSeq) << "stamp identifies the allocation";
  EXPECT_EQ(Reused->SiteId, 11u);
}

} // namespace

//===- SpecGoldenTest.cpp - speculation report snapshots --------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Golden snapshots of `eal spec` over the docs/SPECULATION.md workload:
// the plan-plus-outcome report is the speculative tier's public story --
// which branch was pruned on what profile evidence, which directives
// ride on the guard, and whether the speculation held or deopted. A
// change to it must be a conscious one: regenerate with
//
//   EAL_UPDATE_GOLDEN=1 ./spec_tests --gtest_filter='SpecGolden*'
//
// and review the diff like any other source change.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "spec/SpecReport.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace eal;

namespace {

// The cold-branch workload of examples/nml/spec_cold.nml: keep's
// never-entered then-branch returns its list argument, so build's cells
// are heap-bound conservatively and region-placed speculatively.
const char *specColdSource() {
  return "letrec\n"
         "  build n = if n = 0 then nil else cons n (build (n - 1));\n"
         "  suml l = if (null l) then 0 else (car l) + (suml (cdr l));\n"
         "  keep b l = if b then l else cons (suml l) nil\n"
         "in suml (keep false (build 48))\n";
}

std::string goldenPath(const std::string &Name) {
  return std::string(EAL_SOURCE_DIR) + "/tests/spec/golden/" + Name +
         ".spec";
}

void checkGolden(const std::string &Path, const std::string &Actual) {
  if (std::getenv("EAL_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "updated " << Path;
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (run with EAL_UPDATE_GOLDEN=1 to create)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Actual, Buf.str())
      << "speculation report drifted from " << Path
      << "; if intentional, regenerate with EAL_UPDATE_GOLDEN=1";
}

PipelineResult runSpec(bool InjectDeopt) {
  PipelineOptions Options;
  Options.Spec.Enable = true;
  if (InjectDeopt)
    Options.Spec.Inject.All = true;
  Options.Run.ValidateArenaFrees = true;
  return runPipeline(specColdSource(), Options);
}

// The guard holds for the whole run: one speculation, its directive's
// sites region-placed, zero guard hits, zero migrations.
TEST(SpecGolden, SpeculatedAndHeld) {
  PipelineResult R = runSpec(/*InjectDeopt=*/false);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_TRUE(R.SpecPlan.has_value());
  ASSERT_NE(R.SpecRT, nullptr);
  EXPECT_FALSE(R.SpecRT->deopted());
  checkGolden(goldenPath("spec_cold_held"),
              renderSpecReport(*R.SpecPlan, R.SpecRT.get(), *R.Ast, *R.SM));
}

// A forced guard failure (--spec-inject-deopt=all): the first covered
// arena close deopts, every speculative cell migrates to the GC heap,
// and the report says so.
TEST(SpecGolden, SpeculatedThenDeopted) {
  PipelineResult R = runSpec(/*InjectDeopt=*/true);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_TRUE(R.SpecPlan.has_value());
  ASSERT_NE(R.SpecRT, nullptr);
  EXPECT_TRUE(R.SpecRT->deopted());
  EXPECT_EQ(R.SpecRT->deoptCause(), "injected");
  checkGolden(goldenPath("spec_cold_deopted"),
              renderSpecReport(*R.SpecPlan, R.SpecRT.get(), *R.Ast, *R.SM));
}

// Both outcomes compute the same value as the conservative pipeline --
// the snapshots above describe presentation, this pins semantics.
TEST(SpecGolden, OutcomesAgreeWithConservativeRun) {
  PipelineOptions Plain;
  Plain.Run.ValidateArenaFrees = true;
  PipelineResult Base = runPipeline(specColdSource(), Plain);
  ASSERT_TRUE(Base.Success) << Base.diagnostics();
  for (bool InjectDeopt : {false, true}) {
    PipelineResult R = runSpec(InjectDeopt);
    ASSERT_TRUE(R.Success) << R.diagnostics();
    EXPECT_EQ(R.RenderedValue, Base.RenderedValue);
  }
}

} // namespace

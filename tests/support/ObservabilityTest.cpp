//===- ObservabilityTest.cpp - obs:: tracing and metrics tests --------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Unit tests for the observability subsystem (support/Trace.h,
// support/Metrics.h): span nesting, the event stream, Chrome trace JSON
// well-formedness, histograms, the registry, and RuntimeStats export.
//
//===----------------------------------------------------------------------===//

#include "runtime/RuntimeStats.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace eal;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON reader, enough to verify exporter output is well formed
// without depending on a JSON library.
//===----------------------------------------------------------------------===//

class JsonReader {
public:
  explicit JsonReader(const std::string &Text) : Text(Text) {}

  /// Parses the whole buffer as one JSON value; false on any error or
  /// trailing garbage.
  bool valid() {
    Pos = 0;
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  bool value() {
    skipWs();
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // control characters must be escaped
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos];
        if (E == 'u') {
          for (int I = 0; I != 4; ++I) {
            ++Pos;
            if (Pos >= Text.size() || !std::isxdigit(
                    static_cast<unsigned char>(Text[Pos])))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++Pos;
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.') {
      ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return Pos > Start;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }

  const std::string &Text;
  size_t Pos = 0;
};

/// Resets all global observability state around each test so they do not
/// leak recorder contents or enable flags into each other.
class ObservabilityTest : public ::testing::Test {
protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    obs::disableTracing();
    obs::disableMetrics();
    obs::clearTrace();
    obs::globalMetrics().clear();
  }
};

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, SpanInactiveWhenDisabled) {
  ASSERT_FALSE(obs::enabled());
  {
    obs::Span S("idle");
    EXPECT_FALSE(S.active());
    EXPECT_EQ(obs::Span::currentDepth(), 0u);
  }
  EXPECT_EQ(obs::eventCount(), 0u);
}

TEST_F(ObservabilityTest, SpanNestingDepth) {
  obs::enableTracing();
  EXPECT_EQ(obs::Span::currentDepth(), 0u);
  {
    obs::Span Outer("outer");
    EXPECT_TRUE(Outer.active());
    EXPECT_EQ(obs::Span::currentDepth(), 1u);
    {
      obs::Span Inner("inner");
      EXPECT_EQ(obs::Span::currentDepth(), 2u);
    }
    EXPECT_EQ(obs::Span::currentDepth(), 1u);
  }
  EXPECT_EQ(obs::Span::currentDepth(), 0u);

  // Spans record at destruction, so the inner event lands first; each
  // carries its nesting depth and the outer interval contains the inner.
  std::vector<obs::TraceEvent> Events = obs::snapshot();
  ASSERT_EQ(Events.size(), 2u);
  const obs::TraceEvent &Inner = Events[0];
  const obs::TraceEvent &Outer = Events[1];
  EXPECT_EQ(Inner.Name, "inner");
  EXPECT_EQ(Outer.Name, "outer");
  EXPECT_EQ(Inner.Phase, 'X');
  EXPECT_EQ(Outer.Phase, 'X');
  EXPECT_EQ(Inner.Depth, 2u);
  EXPECT_EQ(Outer.Depth, 1u);
  EXPECT_LE(Outer.TimestampUs, Inner.TimestampUs);
  EXPECT_GE(Outer.TimestampUs + Outer.DurationUs,
            Inner.TimestampUs + Inner.DurationUs);
}

TEST_F(ObservabilityTest, SpanArgsAreRecorded) {
  obs::enableTracing();
  {
    obs::Span S("work", "test");
    S.arg("cells", uint64_t(42));
    S.arg("label", std::string_view("a\"b"));
  }
  std::vector<obs::TraceEvent> Events = obs::snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Category, "test");
  ASSERT_EQ(Events[0].Args.size(), 2u);
  EXPECT_EQ(Events[0].Args[0].first, "cells");
  EXPECT_EQ(Events[0].Args[0].second, "42");
  EXPECT_EQ(Events[0].Args[1].second, "\"a\\\"b\""); // quoted + escaped
}

//===----------------------------------------------------------------------===//
// Event stream
//===----------------------------------------------------------------------===//

struct CollectingSink : obs::EventSink {
  std::vector<obs::TraceEvent> Seen;
  void onEvent(const obs::TraceEvent &E) override { Seen.push_back(E); }
};

TEST_F(ObservabilityTest, SinkReceivesEventsWithoutRecorder) {
  CollectingSink Sink;
  obs::addSink(&Sink);
  EXPECT_TRUE(obs::enabled());
  EXPECT_TRUE(obs::streamEnabled());
  EXPECT_FALSE(obs::tracingEnabled());

  obs::instant("tick", "test", {{"k", "1"}});
  { obs::Span S("spanned", "test"); }

  obs::removeSink(&Sink);
  EXPECT_FALSE(obs::enabled());

  // The sink saw both; the recorder (off) kept nothing.
  ASSERT_EQ(Sink.Seen.size(), 2u);
  EXPECT_EQ(Sink.Seen[0].Name, "tick");
  EXPECT_EQ(Sink.Seen[0].Phase, 'i');
  EXPECT_EQ(Sink.Seen[1].Name, "spanned");
  EXPECT_EQ(obs::eventCount(), 0u);

  // With everything detached, producer sites go quiet again.
  obs::instant("ignored", "test");
  EXPECT_EQ(Sink.Seen.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Chrome trace export
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, ChromeTraceJsonIsWellFormed) {
  obs::enableTracing();
  {
    obs::Span S("phase", "pipeline");
    S.arg("nodes", uint64_t(7));
    S.arg("path", std::string_view("a\\b\"c\n"));
    obs::instant("gc.collect", "gc", {{"swept", "12"}});
    obs::counter("live_cells", 34);
  }
  std::string Json = obs::toChromeTraceJson();
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.valid()) << Json;
  // Spot-check the trace_event shape (the exporter renders compactly).
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"gc.collect\""), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(Json.find("\"s\":\"t\""), std::string::npos);
}

TEST_F(ObservabilityTest, JsonQuoteEscapes) {
  EXPECT_EQ(obs::jsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(obs::jsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(obs::jsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(obs::jsonQuote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(obs::jsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

//===----------------------------------------------------------------------===//
// PhaseTimer
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, PhaseTimerAlwaysMeasuresWallTime) {
  ASSERT_FALSE(obs::enabled());
  obs::PhaseTimer::PhaseTimes Times;
  { obs::PhaseTimer T(&Times, "parse"); }
  { obs::PhaseTimer T(&Times, "execute"); }
  ASSERT_EQ(Times.size(), 2u);
  EXPECT_EQ(Times[0].first, "parse");
  EXPECT_EQ(Times[1].first, "execute");
  EXPECT_GE(Times[0].second, 0);
  EXPECT_EQ(obs::eventCount(), 0u); // no tracing side effects
}

TEST_F(ObservabilityTest, PhaseTimerFeedsMetricsWhenEnabled) {
  obs::enableMetrics();
  obs::PhaseTimer::PhaseTimes Times;
  { obs::PhaseTimer T(&Times, "escape"); }
  { obs::PhaseTimer T(&Times, "escape"); }
  obs::MetricsRegistry &Reg = obs::globalMetrics();
  EXPECT_TRUE(Reg.hasCounter("phase.escape.micros"));
  EXPECT_EQ(Reg.counterValue("phase.escape.runs"), 2u);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, HistogramBucketsArePowersOfTwo) {
  obs::Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // empty histogram reports 0, not UINT64_MAX
  // bucket 0 = {0}; bucket i = [2^(i-1), 2^i).
  H.record(0);
  H.record(1);
  H.record(2);
  H.record(3);
  H.record(4);
  H.record(7);
  H.record(8);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 2u);
  EXPECT_EQ(H.bucket(3), 2u);
  EXPECT_EQ(H.bucket(4), 1u);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.sum(), 25u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 8u);
  EXPECT_DOUBLE_EQ(H.mean(), 25.0 / 7.0);
  EXPECT_EQ(H.usedBuckets(), 5u);

  std::string Json = H.toJson();
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.valid()) << Json;
}

TEST_F(ObservabilityTest, HistogramBucketBoundaries) {
  // Exact boundary semantics: bucket 0 = {0}, bucket i = [2^(i-1), 2^i).
  // An exact power of two 2^k is the *lower* bound of bucket k+1, and
  // 2^k - 1 the upper bound of bucket k; confirm neither is off by one
  // across the whole range.
  for (unsigned K : {0u, 1u, 5u, 31u, 32u, 62u}) {
    obs::Histogram H;
    H.record(uint64_t(1) << K);
    EXPECT_EQ(H.bucket(K + 1), 1u) << "2^" << K;
    EXPECT_EQ(H.bucket(K), 0u) << "2^" << K;
    if (K > 0) {
      H.record((uint64_t(1) << K) - 1);
      EXPECT_EQ(H.bucket(K), 1u) << "2^" << K << " - 1";
    }
  }

  obs::Histogram H;
  H.record(0);
  EXPECT_EQ(H.bucket(0), 1u);
  // 2^63 and UINT64_MAX both land in the last bucket (index 64 =
  // NumBuckets - 1): [2^63, 2^64) covers the whole top half of the
  // domain, so no value can overflow the table.
  H.record(uint64_t(1) << 63);
  H.record(UINT64_MAX);
  EXPECT_EQ(H.bucket(obs::Histogram::NumBuckets - 1), 2u);
  EXPECT_EQ(H.usedBuckets(), obs::Histogram::NumBuckets);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.max(), UINT64_MAX);
  EXPECT_EQ(H.min(), 0u);

  std::string Json = H.toJson();
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.valid()) << Json;
}

TEST_F(ObservabilityTest, ConcurrentSpansReachSinkAndRecorder) {
  // Two threads emitting spans and instants while a sink is attached:
  // dispatch serializes under the obs mutex, so a plain collecting sink
  // must see every event exactly once and the recorder must keep them
  // all, with no torn events.
  obs::enableTracing();
  CollectingSink Sink;
  obs::addSink(&Sink);

  constexpr int PerThread = 500;
  auto Work = [](const char *Name) {
    for (int I = 0; I != PerThread; ++I) {
      obs::Span S(Name, "mt");
      S.arg("i", static_cast<uint64_t>(I));
      obs::instant(Name, "mt");
    }
  };
  std::thread A(Work, "alpha");
  std::thread B(Work, "beta");
  A.join();
  B.join();
  obs::removeSink(&Sink);

  ASSERT_EQ(Sink.Seen.size(), 4u * PerThread);
  size_t Alpha = 0, Beta = 0;
  for (const obs::TraceEvent &E : Sink.Seen) {
    EXPECT_TRUE(E.Name == "alpha" || E.Name == "beta") << E.Name;
    EXPECT_TRUE(E.Phase == 'X' || E.Phase == 'i');
    (E.Name == "alpha" ? Alpha : Beta) += 1;
  }
  EXPECT_EQ(Alpha, 2u * PerThread);
  EXPECT_EQ(Beta, 2u * PerThread);
  EXPECT_EQ(obs::eventCount(), 4u * PerThread);
  // The export of the interleaved log is still valid JSON.
  std::string Json = obs::toChromeTraceJson();
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.valid());
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, RegistryCreatesOnFirstUse) {
  obs::MetricsRegistry Reg;
  EXPECT_FALSE(Reg.hasCounter("a"));
  EXPECT_EQ(Reg.counterValue("a"), 0u);
  Reg.counter("a").add(3);
  Reg.counter("a").add(4);
  EXPECT_TRUE(Reg.hasCounter("a"));
  EXPECT_EQ(Reg.counterValue("a"), 7u);
  Reg.counter("b").max(10);
  Reg.counter("b").max(5);
  EXPECT_EQ(Reg.counterValue("b"), 10u);
  Reg.histogram("h").record(16);
  EXPECT_TRUE(Reg.hasHistogram("h"));
  EXPECT_EQ(Reg.numCounters(), 2u);
  EXPECT_EQ(Reg.numHistograms(), 1u);

  std::string Json = Reg.toJson();
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.valid()) << Json;
  EXPECT_NE(Json.find("\"a\": 7"), std::string::npos);

  Reg.clear();
  EXPECT_EQ(Reg.numCounters(), 0u);
  EXPECT_EQ(Reg.numHistograms(), 0u);
}

//===----------------------------------------------------------------------===//
// RuntimeStats integration
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, RuntimeStatsStrAndJsonCarryDerivedTotal) {
  RuntimeStats Stats;
  Stats.HeapCellsAllocated = 10;
  Stats.StackCellsAllocated = 4;
  Stats.RegionCellsAllocated = 2;
  Stats.DconsReuses = 5;

  std::string Render = Stats.str();
  EXPECT_NE(Render.find("total cells allocated"), std::string::npos);
  EXPECT_NE(Render.find("= 16"), std::string::npos);

  std::string Json = Stats.toJson();
  JsonReader Reader(Json);
  EXPECT_TRUE(Reader.valid()) << Json;
  EXPECT_NE(Json.find("\"total_cells_allocated\": 16"), std::string::npos);
  EXPECT_NE(Json.find("\"dcons_reuses\": 5"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// flushOpenSpans: exports taken mid-phase keep the in-flight spans
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, FlushOpenSpansRecordsInFlightSpanOnce) {
  obs::enableTracing();
  obs::enableMetrics();
  auto S = std::make_unique<obs::Span>("open-phase", "test");
  S->arg("depth", static_cast<uint64_t>(1));
  EXPECT_EQ(obs::eventCount(), 0u); // still open: nothing recorded yet

  EXPECT_EQ(obs::flushOpenSpans(), 1u);
  EXPECT_EQ(obs::eventCount(), 1u);
  EXPECT_EQ(obs::globalMetrics().counterValue("obs.export.dropped_spans"),
            1u);

  std::vector<obs::TraceEvent> Events = obs::snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Name, "open-phase");
  EXPECT_EQ(Events[0].Phase, 'X');
  bool KeptArg = false, Marked = false;
  for (const auto &[Key, Value] : Events[0].Args) {
    KeptArg |= Key == "depth";
    Marked |= Key == "flushed" && Value == "true";
  }
  EXPECT_TRUE(KeptArg);
  EXPECT_TRUE(Marked);

  // The span's own destruction must not record the event a second time.
  S.reset();
  EXPECT_EQ(obs::eventCount(), 1u);
}

TEST_F(ObservabilityTest, FlushOpenSpansIsNoOpWhenAllSpansClosed) {
  obs::enableTracing();
  obs::enableMetrics();
  { obs::Span S("closed-phase", "test"); }
  EXPECT_EQ(obs::eventCount(), 1u);
  EXPECT_EQ(obs::flushOpenSpans(), 0u);
  EXPECT_EQ(obs::eventCount(), 1u);
  EXPECT_EQ(obs::globalMetrics().counterValue("obs.export.dropped_spans"),
            0u);
}

TEST_F(ObservabilityTest, FlushOpenSpansOrdersInnermostFirst) {
  obs::enableTracing();
  obs::Span Outer("outer", "test");
  obs::Span Inner("inner", "test");
  EXPECT_EQ(obs::flushOpenSpans(), 2u);
  std::vector<obs::TraceEvent> Events = obs::snapshot();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Name, "inner");
  EXPECT_EQ(Events[1].Name, "outer");
}

TEST_F(ObservabilityTest, RuntimeStatsExportToRegistry) {
  RuntimeStats Stats;
  Stats.HeapCellsAllocated = 9;
  Stats.GcRuns = 3;
  obs::MetricsRegistry Reg;
  Stats.exportTo(Reg);
  EXPECT_EQ(Reg.counterValue("runtime.heap_cells_allocated"), 9u);
  EXPECT_EQ(Reg.counterValue("runtime.gc_runs"), 3u);
  EXPECT_EQ(Reg.counterValue("runtime.total_cells_allocated"), 9u);
  // Every forEachField key is present.
  size_t Fields = 0;
  Stats.forEachField([&](const char *, const char *, uint64_t) { ++Fields; });
  EXPECT_EQ(Reg.numCounters(), Fields);
}

} // namespace

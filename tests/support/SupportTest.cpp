//===- SupportTest.cpp - support-layer unit tests ---------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Hashing.h"
#include "support/SourceManager.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

using namespace eal;

namespace {

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(ArenaTest, AllocatesAligned) {
  Arena A;
  for (size_t Align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u);
  }
}

TEST(ArenaTest, CreateConstructsObjects) {
  Arena A;
  struct Point {
    int X, Y;
  };
  Point *P = A.create<Point>(Point{3, 4});
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(ArenaTest, GrowsAcrossSlabs) {
  Arena A(/*SlabSize=*/128);
  for (int I = 0; I != 100; ++I)
    A.allocate(64, 8);
  EXPECT_GT(A.slabCount(), 1u);
  EXPECT_GE(A.bytesAllocated(), 6400u);
}

TEST(ArenaTest, LargeAllocationGetsOwnSlab) {
  Arena A(/*SlabSize=*/64);
  void *P = A.allocate(1024, 8);
  EXPECT_NE(P, nullptr);
}

TEST(ArenaTest, CopyArrayAndString) {
  Arena A;
  int Data[] = {1, 2, 3};
  int *Copy = A.copyArray(Data, 3);
  EXPECT_EQ(Copy[0], 1);
  EXPECT_EQ(Copy[2], 3);
  EXPECT_NE(Copy, Data);
  const char *Str = A.copyString("hello", 5);
  EXPECT_STREQ(Str, "hello");
  EXPECT_EQ(A.copyArray<int>(nullptr, 0), nullptr);
}

//===----------------------------------------------------------------------===//
// SourceManager
//===----------------------------------------------------------------------===//

TEST(SourceManagerTest, LineColumnMapping) {
  SourceManager SM;
  SM.setBuffer("ab\ncde\n\nf", "test.nml");
  EXPECT_EQ(SM.lineColumn(SourceLoc(0)), (LineColumn{1, 1}));
  EXPECT_EQ(SM.lineColumn(SourceLoc(1)), (LineColumn{1, 2}));
  EXPECT_EQ(SM.lineColumn(SourceLoc(3)), (LineColumn{2, 1}));
  EXPECT_EQ(SM.lineColumn(SourceLoc(5)), (LineColumn{2, 3}));
  EXPECT_EQ(SM.lineColumn(SourceLoc(7)), (LineColumn{3, 1}));
  EXPECT_EQ(SM.lineColumn(SourceLoc(8)), (LineColumn{4, 1}));
}

TEST(SourceManagerTest, InvalidLocationMapsToZero) {
  SourceManager SM;
  SM.setBuffer("abc");
  EXPECT_EQ(SM.lineColumn(SourceLoc::invalid()), (LineColumn{0, 0}));
}

TEST(SourceManagerTest, OffsetPastEndIsClamped) {
  SourceManager SM;
  SM.setBuffer("ab");
  LineColumn LC = SM.lineColumn(SourceLoc(100));
  EXPECT_EQ(LC.Line, 1u);
}

TEST(SourceManagerTest, LineTextExtraction) {
  SourceManager SM;
  SM.setBuffer("first\nsecond\nthird");
  EXPECT_EQ(SM.lineText(SourceLoc(0)), "first");
  EXPECT_EQ(SM.lineText(SourceLoc(7)), "second");
  EXPECT_EQ(SM.lineText(SourceLoc(13)), "third");
}

TEST(SourceManagerTest, RangeText) {
  SourceManager SM;
  SM.setBuffer("hello world");
  EXPECT_EQ(SM.text(SourceRange(SourceLoc(0), SourceLoc(5))), "hello");
  EXPECT_EQ(SM.text(SourceRange(SourceLoc(6), SourceLoc(11))), "world");
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, CountsErrorsOnly) {
  DiagnosticEngine D;
  D.warning(SourceLoc(0), "w");
  D.note(SourceLoc(0), "n");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(0), "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(DiagnosticsTest, RenderFormat) {
  SourceManager SM;
  SM.setBuffer("x\nyz", "prog.nml");
  DiagnosticEngine D;
  D.error(SourceLoc(2), "bad thing");
  EXPECT_EQ(D.render(SM), "prog.nml:2:1: error: bad thing\n");
}

TEST(DiagnosticsTest, ClearResets) {
  DiagnosticEngine D;
  D.error(SourceLoc(0), "e");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInternerTest, InterningIsIdempotent) {
  StringInterner SI;
  Symbol A = SI.intern("foo");
  Symbol B = SI.intern("foo");
  Symbol C = SI.intern("bar");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(SI.spelling(A), "foo");
  EXPECT_EQ(SI.spelling(C), "bar");
  EXPECT_EQ(SI.size(), 2u);
}

TEST(StringInternerTest, InvalidSymbol) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
  EXPECT_EQ(S, Symbol::invalid());
}

TEST(StringInternerTest, SymbolsAreHashable) {
  StringInterner SI;
  std::hash<Symbol> H;
  EXPECT_EQ(H(SI.intern("a")), H(SI.intern("a")));
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(HashingTest, OrderSensitive) {
  EXPECT_NE(hashValues(1, 2), hashValues(2, 1));
  EXPECT_EQ(hashValues(1, 2), hashValues(1, 2));
}

} // namespace

//===- TypeInferenceTest.cpp - type system unit tests -----------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "types/TypeInference.h"

#include "TestUtil.h"
#include "lang/AstUtils.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class TypeInferenceTest : public ::testing::Test {
protected:
  Frontend FE;

  /// Infers and returns the root type's name, or "<error>".
  std::string typeOf(const std::string &Source,
                     TypeInferenceMode Mode = TypeInferenceMode::Polymorphic) {
    if (!FE.parseAndType(Source, Mode))
      return "<error>";
    return typeName(FE.Typed->typeOf(FE.Root));
  }

  /// Type of a top-level letrec binding.
  std::string bindingType(const char *Name) {
    const auto *Letrec = cast<LetrecExpr>(FE.Root);
    const LetrecBinding *B = Letrec->findBinding(FE.Ast.intern(Name));
    return typeName(FE.Typed->typeOf(B->Value));
  }
};

//===----------------------------------------------------------------------===//
// Hash-consed types and spine counts.
//===----------------------------------------------------------------------===//

TEST(TypeTest, HashConsing) {
  TypeContext TC;
  EXPECT_EQ(TC.getList(TC.getInt()), TC.getList(TC.getInt()));
  EXPECT_EQ(TC.getFun(TC.getInt(), TC.getBool()),
            TC.getFun(TC.getInt(), TC.getBool()));
  EXPECT_NE(TC.getFun(TC.getInt(), TC.getBool()),
            TC.getFun(TC.getBool(), TC.getInt()));
}

TEST(TypeTest, SpineCounts) {
  TypeContext TC;
  const Type *Int = TC.getInt();
  EXPECT_EQ(spineCount(Int), 0u);
  EXPECT_EQ(spineCount(TC.getList(Int)), 1u);
  EXPECT_EQ(spineCount(TC.getList(TC.getList(Int))), 2u);
  EXPECT_EQ(spineCount(TC.getFun(Int, TC.getList(Int))), 0u);
  // A list of functions has one spine.
  EXPECT_EQ(spineCount(TC.getList(TC.getFun(Int, Int))), 1u);
}

TEST(TypeTest, TypeNames) {
  TypeContext TC;
  const Type *Int = TC.getInt();
  EXPECT_EQ(typeName(TC.getList(TC.getList(Int))), "int list list");
  EXPECT_EQ(typeName(TC.getFun(Int, TC.getFun(Int, TC.getBool()))),
            "int -> int -> bool");
  EXPECT_EQ(typeName(TC.getFun(TC.getFun(Int, Int), Int)),
            "(int -> int) -> int");
  EXPECT_EQ(typeName(TC.getList(TC.getFun(Int, Int))), "(int -> int) list");
}

//===----------------------------------------------------------------------===//
// Inference of core forms.
//===----------------------------------------------------------------------===//

TEST_F(TypeInferenceTest, Literals) {
  EXPECT_EQ(typeOf("42"), "int");
  EXPECT_EQ(typeOf("true"), "bool");
  EXPECT_EQ(typeOf("[1, 2]"), "int list");
  EXPECT_EQ(typeOf("[[1], [2]]"), "int list list");
}

TEST_F(TypeInferenceTest, NilDefaultsToIntList) {
  // Residual type variables default to int (simplest instance).
  EXPECT_EQ(typeOf("nil"), "int list");
}

TEST_F(TypeInferenceTest, LambdasAndApplication) {
  EXPECT_EQ(typeOf("lambda(x). x + 1"), "int -> int");
  EXPECT_EQ(typeOf("(lambda(x). x) true"), "bool");
  EXPECT_EQ(typeOf("lambda(f). f 1"), "(int -> int) -> int");
}

TEST_F(TypeInferenceTest, PrimTypes) {
  EXPECT_EQ(typeOf("cons"), "int -> int list -> int list");
  EXPECT_EQ(typeOf("car [true]"), "bool");
  EXPECT_EQ(typeOf("cdr [[1]]"), "int list list");
  EXPECT_EQ(typeOf("null [1]"), "bool");
  EXPECT_EQ(typeOf("not true"), "bool");
}

TEST_F(TypeInferenceTest, LetPolymorphism) {
  // id is used at int and bool: requires generalization at let.
  EXPECT_EQ(typeOf("let id = lambda(x). x in if id true then id 1 else 2"),
            "int");
}

TEST_F(TypeInferenceTest, MonomorphicModeRejectsPolyUse) {
  EXPECT_EQ(typeOf("let id = lambda(x). x in if id true then id 1 else 2",
                   TypeInferenceMode::Monomorphic),
            "<error>");
  EXPECT_TRUE(FE.Diags.hasErrors());
}

TEST_F(TypeInferenceTest, LetrecRecursionAndGeneralization) {
  ASSERT_EQ(typeOf("letrec len l = if (null l) then 0 "
                   "else 1 + len (cdr l) in len [true] + len [1]"),
            "int");
}

TEST_F(TypeInferenceTest, MutualRecursion) {
  EXPECT_EQ(typeOf("letrec even n = if n = 0 then true else odd (n - 1);"
                   "       odd n = if n = 0 then false else even (n - 1) "
                   "in even 10"),
            "bool");
}

TEST_F(TypeInferenceTest, BindingTypesResolved) {
  ASSERT_NE(typeOf(partitionSortSource()), "<error>");
  EXPECT_EQ(bindingType("append"), "int list -> int list -> int list");
  EXPECT_EQ(bindingType("split"),
            "int -> int list -> int list -> int list -> int list list");
  EXPECT_EQ(bindingType("ps"), "int list -> int list");
}

//===----------------------------------------------------------------------===//
// car^s annotations and the spine bound.
//===----------------------------------------------------------------------===//

TEST_F(TypeInferenceTest, CarSpineAnnotations) {
  ASSERT_NE(typeOf("car [[1, 2], [3]]"), "<error>");
  unsigned Found = 0;
  forEachExpr(FE.Root, [&](const Expr *E) {
    const auto *Prim = dyn_cast<PrimExpr>(E);
    if (Prim && Prim->op() == PrimOp::Car) {
      EXPECT_EQ(FE.Typed->carSpine(E), 2u);
      ++Found;
    }
  });
  EXPECT_EQ(Found, 1u);
}

TEST_F(TypeInferenceTest, CarAnnotationsDifferPerOccurrence) {
  ASSERT_NE(typeOf("car (car [[1], [2]])"), "<error>");
  std::vector<unsigned> Spines;
  forEachExpr(FE.Root, [&](const Expr *E) {
    const auto *Prim = dyn_cast<PrimExpr>(E);
    if (Prim && Prim->op() == PrimOp::Car)
      Spines.push_back(FE.Typed->carSpine(E));
  });
  std::sort(Spines.begin(), Spines.end());
  EXPECT_EQ(Spines, (std::vector<unsigned>{1, 2}));
}

TEST_F(TypeInferenceTest, SpineBoundCoversFunctionComponents) {
  ASSERT_NE(typeOf("lambda(x). if null x then 1 else 2"), "<error>");
  // x : t list defaults to int list; the bound must see it inside the
  // function type even though no expression has a 2-spine type.
  EXPECT_GE(FE.Typed->spineBound(), 1u);
  Frontend FE2;
  ASSERT_TRUE(FE2.parseAndType("car [[1, 2], [3]]"));
  EXPECT_EQ(FE2.Typed->spineBound(), 2u);
}

//===----------------------------------------------------------------------===//
// Errors.
//===----------------------------------------------------------------------===//

TEST_F(TypeInferenceTest, MismatchesRejected) {
  const char *Bad[] = {
      "1 + true",
      "if 1 then 2 else 3",
      "if true then 1 else nil",
      "car 5",
      "cons 1 [true]",
      "(lambda(x). x + 1) true",
      "unbound_name",
      "letrec f x = f in f 1",           // infinite type
      "let g = lambda(x). x x in g g",   // occurs check
  };
  for (const char *Source : Bad) {
    Frontend Fresh;
    EXPECT_FALSE(Fresh.parseAndType(Source)) << "accepted: " << Source;
    EXPECT_TRUE(Fresh.Diags.hasErrors());
  }
}

TEST_F(TypeInferenceTest, HeterogeneousListRejected) {
  EXPECT_EQ(typeOf("[1, true]"), "<error>");
}

} // namespace

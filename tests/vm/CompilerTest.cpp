//===- CompilerTest.cpp - bytecode compiler unit tests -----------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Targeted lexical-addressing and shape tests; end-to-end behaviour is
// covered by VmTest and the engine-differential seeds.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "TestUtil.h"
#include "driver/Pipeline.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class CompilerTest : public ::testing::Test {
protected:
  Frontend FE;

  std::optional<Chunk> compile(const std::string &Source) {
    if (!FE.parseAndType(Source))
      return std::nullopt;
    return compileToBytecode(FE.Ast, FE.Root, nullptr, FE.Diags);
  }

  /// Compiles and runs, returning the rendered value.
  std::string evalVm(const std::string &Source) {
    PipelineOptions Options;
    Options.Engine = ExecutionEngine::Bytecode;
    PipelineResult R = runPipeline(Source, Options);
    if (!R.Success)
      return "<error: " + R.diagnostics() + ">";
    return R.RenderedValue;
  }

  /// Counts instructions with opcode \p Op across all protos.
  static size_t countOps(const Chunk &C, Opcode Op) {
    size_t N = 0;
    for (const Proto &P : C.Protos)
      for (const Instr &I : P.Code)
        if (I.Op == Op)
          ++N;
    return N;
  }
};

TEST_F(CompilerTest, LambdaChainsBecomeOneProto) {
  auto C = compile("lambda(a b c). a + b + c");
  ASSERT_TRUE(C.has_value()) << FE.diagText();
  ASSERT_EQ(C->Protos.size(), 2u); // entry + the chain
  EXPECT_EQ(C->Protos[1].Arity, 3u);
}

TEST_F(CompilerTest, SaturatedPrimsCompileToPrimInstr) {
  auto C = compile("cons 1 (cons 2 nil)");
  ASSERT_TRUE(C.has_value()) << FE.diagText();
  EXPECT_EQ(countOps(*C, Opcode::Prim), 2u);
  EXPECT_EQ(countOps(*C, Opcode::Call), 0u);
  EXPECT_EQ(countOps(*C, Opcode::PushPrim), 0u);
}

TEST_F(CompilerTest, UnsaturatedPrimBecomesValue) {
  auto C = compile("let inc = (lambda(f). f) cons in inc 1 nil");
  ASSERT_TRUE(C.has_value()) << FE.diagText();
  EXPECT_GE(countOps(*C, Opcode::PushPrim), 1u);
}

TEST_F(CompilerTest, ShadowingResolvesToInnermost) {
  EXPECT_EQ(evalVm("let x = 1 in let x = 2 in x"), "2");
  EXPECT_EQ(evalVm("let x = 1 in (lambda(x). x) 9"), "9");
  EXPECT_EQ(evalVm("let x = 1 in (lambda(x). x + x) 9 + x"), "19");
}

TEST_F(CompilerTest, DeepLexicalAddressing) {
  // Four frames deep: proto params, two lets, and a letrec scope.
  EXPECT_EQ(evalVm(R"(
let a = 100 in
let b = 10 in
letrec f c = a + b + c in
(lambda(d). f d + a) 1
)"),
            "211");
}

TEST_F(CompilerTest, LetInsideLetrecBindingBody) {
  EXPECT_EQ(evalVm(R"(
letrec f x = let y = x * 2 in
             letrec g z = z + y in g x
in f 5
)"),
            "15");
}

TEST_F(CompilerTest, ClosuresCaptureTheDefiningFrame) {
  // The closure must see the let frame as it was at creation.
  EXPECT_EQ(evalVm(R"(
let mk = lambda(v). lambda(u). v + u in
let f1 = mk 10 in
let f2 = mk 20 in
f1 1 + f2 2
)"),
            "33");
}

TEST_F(CompilerTest, LetrecSelfReferenceThroughSlots) {
  // Mutual recursion across slots, including a non-lambda binding
  // evaluated after the functions it references.
  EXPECT_EQ(evalVm(R"(
letrec
  f n = if n = 0 then 0 else g (n - 1);
  g n = if n = 0 then 1 else f (n - 1);
  seed = f 4
in seed
)"),
            "0");
}

TEST_F(CompilerTest, JumpOffsetsAreConsistent) {
  // Deeply nested conditionals exercise patching.
  std::string Source = "if 1 < 2 then (if 2 < 3 then (if 3 < 4 then 7 "
                       "else 0) else 1) else 2";
  EXPECT_EQ(evalVm(Source), "7");
  auto C = compile(Source);
  ASSERT_TRUE(C.has_value());
  // Every jump target must land inside the proto.
  for (const Proto &P : C->Protos)
    for (size_t I = 0; I != P.Code.size(); ++I)
      if (P.Code[I].Op == Opcode::Jump ||
          P.Code[I].Op == Opcode::JumpIfFalse) {
        int64_t Target = static_cast<int64_t>(I) + 1 + P.Code[I].A;
        EXPECT_GE(Target, 0);
        EXPECT_LT(Target, static_cast<int64_t>(P.Code.size()));
      }
}

TEST_F(CompilerTest, ProtosNamedAfterBindings) {
  auto C = compile(partitionSortSource());
  ASSERT_TRUE(C.has_value()) << FE.diagText();
  bool SawPs = false, SawSplit = false;
  for (const Proto &P : C->Protos) {
    SawPs = SawPs || P.Name == "ps";
    SawSplit = SawSplit || P.Name == "split";
  }
  EXPECT_TRUE(SawPs && SawSplit);
}

TEST_F(CompilerTest, EveryProtoEndsInReturn) {
  auto C = compile(partitionSortSource());
  ASSERT_TRUE(C.has_value());
  for (const Proto &P : C->Protos) {
    ASSERT_FALSE(P.Code.empty());
    EXPECT_EQ(P.Code.back().Op, Opcode::Return) << P.Name;
  }
}

} // namespace

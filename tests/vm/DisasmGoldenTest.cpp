//===- DisasmGoldenTest.cpp - bytecode disassembly snapshots ----------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Golden snapshots of the disassembly of the Appendix A / §1 programs.
// The compiler's output format — flat-frame markers, superinstruction
// fusion, tail calls, interned prim references — is load-bearing for
// anyone reading dumps, so a change to it must be a conscious one:
// regenerate with
//
//   EAL_UPDATE_GOLDEN=1 ./vm_tests --gtest_filter='DisasmGolden*'
//
// and review the diff like any other source change.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "vm/Compiler.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace eal;
using namespace eal::test;

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(EAL_SOURCE_DIR) + "/tests/vm/golden/" + Name +
         ".disasm";
}

void checkGolden(const std::string &Name, const char *Source) {
  Frontend FE;
  ASSERT_TRUE(FE.parseAndType(Source)) << FE.diagText();
  auto Chunk = compileToBytecode(FE.Ast, FE.Root, nullptr, FE.Diags);
  ASSERT_TRUE(Chunk.has_value()) << FE.diagText();
  std::string Actual = disassemble(*Chunk);

  const std::string Path = goldenPath(Name);
  if (std::getenv("EAL_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    GTEST_SKIP() << "updated " << Path;
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (run with EAL_UPDATE_GOLDEN=1 to create)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Actual, Buf.str())
      << "disassembly drifted from " << Path
      << "; if intentional, regenerate with EAL_UPDATE_GOLDEN=1";
}

TEST(DisasmGoldenTest, PartitionSort) {
  checkGolden("partition_sort", partitionSortSource());
}

TEST(DisasmGoldenTest, MapPair) { checkGolden("map_pair", mapPairSource()); }

TEST(DisasmGoldenTest, Reverse) { checkGolden("reverse", reverseSource()); }

} // namespace

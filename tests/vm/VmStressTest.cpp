//===- VmStressTest.cpp - deep-recursion regression tests -------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Stress regressions for the VM's frame machinery: million-step runs
// through both the non-tail path (frames pile up on the heap-allocated
// frame vector) and the fused tail-call path (frames are reused in
// place, so the high-water mark must stay flat no matter the depth).
// tools/ci.sh runs these under ASan and UBSan, which is where frame
// reuse or stack-slot bugs actually surface.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace eal;

namespace {

PipelineResult runVm(const std::string &Source) {
  PipelineOptions Options;
  Options.Engine = ExecutionEngine::Bytecode;
  Options.Run.ValidateArenaFrees = true;
  return runPipeline(Source, Options);
}

TEST(VmStressTest, MillionStepTailLoop) {
  // ~3M steps of self tail recursion. TailCall reuses the caller's
  // frame, so the frame high-water mark stays O(1) at any depth.
  PipelineResult R = runVm(
      "letrec loop i acc = if i = 0 then acc else loop (i - 1) (acc + i) "
      "in loop 400000 0");
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "80000200000");
  EXPECT_GE(R.Stats.Steps, 1'000'000u);
  EXPECT_LE(R.Stats.PeakCallFrames, 4u)
      << "tail calls stopped reusing frames";
}

TEST(VmStressTest, MutualTailRecursionStaysFlat) {
  PipelineResult R = runVm(
      "letrec even n = if n = 0 then true else odd (n - 1);"
      "       odd n = if n = 0 then false else even (n - 1) "
      "in if even 300000 then 1 else 0");
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "1");
  EXPECT_GE(R.Stats.Steps, 1'000'000u);
  EXPECT_LE(R.Stats.PeakCallFrames, 4u);
}

TEST(VmStressTest, DeepNonTailRecursion) {
  // 150k-deep non-tail recursion: every call needs its own live frame,
  // and the peak must reflect that depth (no C++ stack involved).
  PipelineResult R = runVm(
      "letrec build n = if n = 0 then nil else cons n (build (n - 1));"
      "       suml l = if (null l) then 0 else car l + suml (cdr l) "
      "in suml (build 150000)");
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "11250075000");
  EXPECT_GE(R.Stats.Steps, 1'000'000u);
  EXPECT_GE(R.Stats.PeakCallFrames, 150'000u);
}

TEST(VmStressTest, TailCallTransfersArenas) {
  // Tail recursion under the full optimizer: arenas the caller owed are
  // inherited by the reused frame and freed at the same point a plain
  // call/return pair would have freed them.
  PipelineOptions Options;
  Options.Engine = ExecutionEngine::Bytecode;
  Options.Optimize.EnableReuse = true;
  Options.Optimize.EnableStack = true;
  Options.Optimize.EnableRegion = true;
  Options.Run.ValidateArenaFrees = true;
  PipelineResult R = runPipeline(
      "letrec buildt n acc = if n = 0 then acc "
      "       else buildt (n - 1) (cons n acc);"
      "       rot l acc n = if n = 0 then acc "
      "       else rot (cdr l) (cons (car l) acc) (n - 1) "
      "in rot (buildt 50000 nil) nil 50000",
      Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_LE(R.Stats.PeakCallFrames, 4u);
}

} // namespace

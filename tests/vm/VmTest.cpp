//===- VmTest.cpp - bytecode engine tests ------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "property/ProgramGenerator.h"
#include "TestUtil.h"
#include "driver/Pipeline.h"
#include "vm/Compiler.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

PipelineResult runOn(ExecutionEngine Engine, const std::string &Source,
                     bool Reuse = true, bool Stack = true,
                     bool Region = true) {
  PipelineOptions Options;
  Options.Engine = Engine;
  Options.Optimize.EnableReuse = Reuse;
  Options.Optimize.EnableStack = Stack;
  Options.Optimize.EnableRegion = Region;
  Options.Run.ValidateArenaFrees = true;
  return runPipeline(Source, Options);
}

TEST(VmTest, CoreForms) {
  struct Row {
    const char *Source;
    const char *Expected;
  };
  const Row Rows[] = {
      {"1 + 2 * 3", "7"},
      {"if 1 < 2 then 10 else 20", "10"},
      {"let x = 4 in x * x", "16"},
      {"(lambda(a b). a - b) 10 3", "7"},
      {"letrec fact n = if n = 0 then 1 else n * fact (n - 1) "
       "in fact 6",
       "720"},
      {"[1, 2, 3]", "[1, 2, 3]"},
      {"car (cdr [1, 2, 3])", "2"},
      {"(1, (true, [2]))", "(1, (true, [2]))"},
      {"fst (snd (1, (2, 3)))", "2"},
      {"letrec even n = if n = 0 then true else odd (n - 1);"
       "       odd n = if n = 0 then false else even (n - 1) "
       "in if even 10 then 1 else 0",
       "1"},
  };
  for (const Row &Row : Rows) {
    PipelineResult R = runOn(ExecutionEngine::Bytecode, Row.Source);
    ASSERT_TRUE(R.Success) << Row.Source << "\n" << R.diagnostics();
    EXPECT_EQ(R.RenderedValue, Row.Expected) << Row.Source;
  }
}

TEST(VmTest, PartialAndOverApplication) {
  PipelineResult R = runOn(
      ExecutionEngine::Bytecode,
      "letrec add a b = a + b; twice f x = f (f x) "
      "in twice (add 5) 1");
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "11");

  // Over-application: k returns a closure which is applied immediately.
  PipelineResult R2 = runOn(
      ExecutionEngine::Bytecode,
      "letrec k a = lambda(b). a + b in k 1 2");
  ASSERT_TRUE(R2.Success) << R2.diagnostics();
  EXPECT_EQ(R2.RenderedValue, "3");
}

TEST(VmTest, PrimAsValue) {
  PipelineResult R = runOn(
      ExecutionEngine::Bytecode,
      "letrec foldr f z l = if (null l) then z "
      "else f (car l) (foldr f z (cdr l)) in foldr cons nil [1, 2, 3]");
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "[1, 2, 3]");
}

TEST(VmTest, MatchesInterpreterOnPaperPrograms) {
  const char *Programs[] = {partitionSortSource(), mapPairSource(),
                            reverseSource()};
  for (const char *Source : Programs) {
    PipelineResult Tree = runOn(ExecutionEngine::TreeWalker, Source);
    PipelineResult Byte = runOn(ExecutionEngine::Bytecode, Source);
    ASSERT_TRUE(Tree.Success && Byte.Success)
        << Tree.diagnostics() << Byte.diagnostics();
    EXPECT_EQ(Byte.RenderedValue, Tree.RenderedValue);
    // Identical storage behaviour: the engines share the heap machinery.
    EXPECT_EQ(Byte.Stats.DconsReuses, Tree.Stats.DconsReuses);
    EXPECT_EQ(Byte.Stats.StackCellsAllocated, Tree.Stats.StackCellsAllocated);
    EXPECT_EQ(Byte.Stats.RegionCellsAllocated,
              Tree.Stats.RegionCellsAllocated);
  }
}

TEST(VmTest, InternedPrimClosuresStopPerUseAllocation) {
  // The §1 map/pair shape with a primitive passed as a value inside a
  // loop. The tree-walker materializes a fresh closure every time `cons`
  // is evaluated as an argument; the VM interns one closure per
  // (prim, site) pair at construction, so its count is a small constant
  // independent of the iteration count.
  const char *Source = R"(
letrec
  pair x = if (null x) then nil else cons (car x) (cons (car x) nil);
  map f l = if (null l) then nil else cons (f (car l)) (map f (cdr l));
  foldr f z l = if (null l) then z else f (car l) (foldr f z (cdr l));
  len l = if (null l) then 0 else 1 + len (cdr l);
  loop n acc =
    if n = 0 then acc
    else loop (n - 1)
              (acc + len (foldr cons nil (map pair [[1, 2], [3, 4], [5, 6]])))
in loop 64 0
)";
  PipelineResult Tree = runOn(ExecutionEngine::TreeWalker, Source);
  PipelineResult Byte = runOn(ExecutionEngine::Bytecode, Source);
  ASSERT_TRUE(Tree.Success && Byte.Success)
      << Tree.diagnostics() << Byte.diagnostics();
  EXPECT_EQ(Byte.RenderedValue, Tree.RenderedValue);
  // One closure per loop iteration (at least), versus a per-program
  // constant: the drop the interning buys on this workload.
  EXPECT_GE(Tree.Stats.ClosuresCreated, 64u);
  EXPECT_LE(Byte.Stats.ClosuresCreated, 16u);
  EXPECT_LT(Byte.Stats.ClosuresCreated * 4, Tree.Stats.ClosuresCreated);
}

TEST(VmTest, DeepRecursionNeedsNoBigStack) {
  // Non-tail recursion 100k deep: VM call frames live on the heap, so no
  // dedicated big-stack thread is needed.
  const char *Source = R"(
letrec build n = if n = 0 then nil else cons n (build (n - 1));
       len l = if (null l) then 0 else 1 + len (cdr l)
in len (build 100000)
)";
  PipelineOptions Options;
  Options.Engine = ExecutionEngine::Bytecode;
  Options.UseLargeStack = false; // irrelevant for the VM
  PipelineResult R = runPipeline(Source, Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "100000");
}

TEST(VmTest, GcUnderPressure) {
  const char *Source = R"(
letrec
  build n = if n = 0 then nil else cons n (build (n - 1));
  suml l = if (null l) then 0 else car l + suml (cdr l);
  loop i acc = if i = 0 then acc
               else loop (i - 1) (acc + suml (build 10))
in loop 200 0
)";
  PipelineOptions Options;
  Options.Engine = ExecutionEngine::Bytecode;
  Options.Optimize.EnableReuse = false;
  Options.Optimize.EnableStack = false;
  Options.Optimize.EnableRegion = false;
  Options.Run.HeapCapacity = 64;
  Options.Run.AllowHeapGrowth = false;
  PipelineResult R = runPipeline(Source, Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "11000");
  EXPECT_GE(R.Stats.GcRuns, 1u);
}

TEST(VmTest, RuntimeErrorsReported) {
  PipelineOptions Options;
  Options.Engine = ExecutionEngine::Bytecode;
  PipelineResult R = runPipeline("car nil", Options);
  EXPECT_FALSE(R.Success);
  EXPECT_NE(R.diagnostics().find("empty list"), std::string::npos);
  PipelineResult R2 = runPipeline("1 div 0", Options);
  EXPECT_FALSE(R2.Success);
}

TEST(VmTest, FuelLimit) {
  PipelineOptions Options;
  Options.Engine = ExecutionEngine::Bytecode;
  Options.Run.MaxSteps = 10000;
  PipelineResult R =
      runPipeline("letrec loop x = loop x in loop 1", Options);
  EXPECT_FALSE(R.Success);
  EXPECT_NE(R.diagnostics().find("step budget"), std::string::npos);
}

TEST(VmTest, DisassemblerRoundTrip) {
  Frontend FE;
  ASSERT_TRUE(FE.parseAndType(
      "letrec f x = if (null x) then 0 else 1 + f (cdr x) in f [1, 2]"));
  auto Chunk = compileToBytecode(FE.Ast, FE.Root, nullptr, FE.Diags);
  ASSERT_TRUE(Chunk.has_value()) << FE.diagText();
  std::string Asm = disassemble(*Chunk);
  EXPECT_NE(Asm.find("proto 0 '<entry>'"), std::string::npos) << Asm;
  // f's frame never escapes: its parameter flattens to a stack slot and
  // `cdr x` fuses into a prim.l superinstruction.
  EXPECT_NE(Asm.find("'f' arity 1 flat"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("prim.l cdr"), std::string::npos) << Asm;
  // `null x` fuses too, and the recursive call is in tail position only
  // on the else branch's inner call spine, which is an argument of `+`,
  // so a plain call remains.
  EXPECT_NE(Asm.find("prim.l null"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("call nargs=1"), std::string::npos) << Asm;
  EXPECT_GT(Chunk->instructionCount(), 10u);
}

//===----------------------------------------------------------------------===//
// Differential: both engines agree on random programs under every
// optimization configuration.
//===----------------------------------------------------------------------===//

class VmDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(VmDifferentialTest, EnginesAgree) {
  ProgramGenerator Gen(GetParam());
  GenProgram Prog = Gen.generate(3);
  for (bool Optimized : {false, true}) {
    PipelineResult Tree = runOn(ExecutionEngine::TreeWalker, Prog.Source,
                                Optimized, Optimized, Optimized);
    PipelineResult Byte = runOn(ExecutionEngine::Bytecode, Prog.Source,
                                Optimized, Optimized, Optimized);
    ASSERT_TRUE(Tree.Success) << Prog.Source << Tree.diagnostics();
    ASSERT_TRUE(Byte.Success) << Prog.Source << Byte.diagnostics();
    EXPECT_EQ(Byte.RenderedValue, Tree.RenderedValue)
        << "ENGINE DIVERGENCE (seed " << GetParam()
        << ", optimized=" << Optimized << "):\n"
        << Prog.Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmDifferentialTest,
                         ::testing::Range(100u, 160u));

} // namespace

#!/usr/bin/env python3
"""Diff two BENCH_*.json reports and gate on perf regressions.

The perf-regression harness (docs/PROFILING.md): compares a CURRENT
eal-bench-v1 report against a BASELINE (typically the checked-in file
under bench/baselines/), record by record, and fails when the execute
time of any sufficiently-long record regressed past the threshold.

Usage:
  bench_diff.py BASELINE CURRENT [options]
  bench_diff.py --overhead REPORT [options]
  bench_diff.py --self-test

Options:
  --max-time-regress R   fail when current/baseline - 1 > R for any
                         gated record (default 0.10, i.e. +10%)
  --min-seconds S        noise floor: records whose baseline time is
                         below S seconds are reported but never gate
                         (default 0.005; container timers are coarse)
  --strict-counters      fail (not just report) when a storage counter
                         drifted between the two reports
  --max-overhead R       --overhead gate threshold (default 0.02)

--overhead mode gates the flight recorder's self-measurement
(docs/RECORDER.md) inside ONE report: every record pair named
<base>/recorder_on + <base>/recorder_off is compared, and the diff
fails when on/off - 1 exceeds --max-overhead for a pair above the
--min-seconds floor, or when the report contains no such pair at all (a
silently vanished measurement must not read as "no overhead").

Per record the preferred time is execute_seconds (best-of-K execute
phase, written by benches that measure it); wall_seconds (whole
pipeline, one shot) is the fallback and is noisier -- set a generous
--min-seconds when only wall times are available.

A record present in BASELINE but missing from CURRENT fails the diff (a
silently dropped configuration is how regressions hide); a record only
in CURRENT is reported as new and does not gate.  Counter drift (storage
counters changing between same-named records) is reported and gates only
under --strict-counters: counters are deterministic for a given binary,
so drift means behavior changed -- often intentionally, which is why the
default is report-only.

Exit status: 0 when no gated regression, 1 otherwise, 2 on usage error.

Only the Python standard library is used.
"""

import json
import os
import sys
import tempfile

SCHEMA = "eal-bench-v1"

# Storage counters whose drift is worth reporting; a subset of the
# eal-bench-v1 required counters (tools/check_bench_json.py).
DRIFT_COUNTERS = [
    "heap_cells_allocated",
    "stack_cells_allocated",
    "region_cells_allocated",
    "dcons_reuses",
    "gc_runs",
]


def load_report(path, errors):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        errors.append("%s: cannot load: %s" % (path, e))
        return None
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        errors.append("%s: 'schema' is %r, expected %r"
                      % (path, doc.get("schema") if isinstance(doc, dict)
                         else None, SCHEMA))
        return None
    records = doc.get("records")
    if not isinstance(records, list):
        errors.append("%s: 'records' is not an array" % path)
        return None
    by_name = {}
    for record in records:
        if isinstance(record, dict) and isinstance(record.get("name"), str):
            by_name[record["name"]] = record
    return by_name


def record_seconds(record):
    """(seconds, which) preferring execute_seconds over wall_seconds."""
    execute = record.get("execute_seconds")
    if isinstance(execute, (int, float)) and not isinstance(execute, bool) \
            and execute >= 0:
        return float(execute), "execute_seconds"
    wall = record.get("wall_seconds")
    if isinstance(wall, (int, float)) and not isinstance(wall, bool) \
            and wall >= 0:
        return float(wall), "wall_seconds"
    return None, None


def diff_reports(baseline, current, max_regress, min_seconds,
                 strict_counters, out=None):
    """Returns a list of failure strings; prints a per-record report."""
    # Late-bound so contextlib.redirect_stdout (self-test) is honored.
    out = out if out is not None else sys.stdout
    failures = []
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        if cur is None:
            failures.append("record %r present in baseline but missing "
                            "from current" % name)
            continue

        base_sec, base_kind = record_seconds(base)
        cur_sec, cur_kind = record_seconds(cur)
        if base_sec is None or cur_sec is None:
            failures.append("record %r has no usable time" % name)
            continue
        if base_kind != cur_kind:
            # Comparing execute vs wall times is apples to oranges.
            out.write("note %s: baseline has %s, current has %s; "
                      "comparing anyway\n" % (name, base_kind, cur_kind))

        if base_sec <= 0:
            ratio = None
            verdict = "n/a "
        else:
            ratio = cur_sec / base_sec - 1.0
            if base_sec < min_seconds:
                verdict = "skip"  # under the noise floor: never gates
            elif ratio > max_regress:
                verdict = "FAIL"
                failures.append(
                    "record %r: %s regressed %+.1f%% "
                    "(%.6fs -> %.6fs, threshold +%.1f%%)"
                    % (name, base_kind, 100 * ratio, base_sec, cur_sec,
                       100 * max_regress))
            else:
                verdict = "ok  "
        out.write("%s %s: %.6fs -> %.6fs%s [%s]\n"
                  % (verdict, name, base_sec, cur_sec,
                     "" if ratio is None else " (%+.1f%%)" % (100 * ratio),
                     base_kind or "?"))

        base_counters = base.get("counters") or {}
        cur_counters = cur.get("counters") or {}
        for key in DRIFT_COUNTERS:
            b, c = base_counters.get(key), cur_counters.get(key)
            if isinstance(b, int) and isinstance(c, int) and b != c:
                message = ("record %r: counter %s drifted %d -> %d"
                           % (name, key, b, c))
                out.write("%s %s\n"
                          % ("FAIL" if strict_counters else "note", message))
                if strict_counters:
                    failures.append(message)

    for name in sorted(set(current) - set(baseline)):
        out.write("new  %s (not in baseline, not gated)\n" % name)
    return failures


def run_diff(baseline_path, current_path, max_regress, min_seconds,
             strict_counters):
    errors = []
    baseline = load_report(baseline_path, errors)
    current = load_report(current_path, errors)
    for e in errors:
        print("FAIL %s" % e)
    if baseline is None or current is None:
        return 1
    failures = diff_reports(baseline, current, max_regress, min_seconds,
                            strict_counters)
    for f in failures:
        print("FAIL %s" % f)
    if not failures:
        print("ok   %s vs %s: no gated regression"
              % (os.path.basename(baseline_path),
                 os.path.basename(current_path)))
    return 1 if failures else 0


def run_overhead(path, max_overhead, min_seconds):
    errors = []
    report = load_report(path, errors)
    for e in errors:
        print("FAIL %s" % e)
    if report is None:
        return 1
    failures = []
    pairs = 0
    for name in sorted(report):
        if not name.endswith("/recorder_off"):
            continue
        on_name = name[:-len("/recorder_off")] + "/recorder_on"
        on = report.get(on_name)
        if on is None:
            failures.append("record %r has no %r sibling" % (name, on_name))
            continue
        pairs += 1
        off_sec, off_kind = record_seconds(report[name])
        on_sec, on_kind = record_seconds(on)
        if off_sec is None or on_sec is None:
            failures.append("pair %r has no usable time" % name)
            continue
        if off_sec <= 0:
            print("n/a  %s: off time is zero" % name)
            continue
        ratio = on_sec / off_sec - 1.0
        if off_sec < min_seconds:
            verdict = "skip"  # under the noise floor: never gates
        elif ratio > max_overhead:
            verdict = "FAIL"
            failures.append(
                "pair %r: recorder overhead %+.2f%% exceeds +%.2f%% "
                "(off %.6fs, on %.6fs)"
                % (name, 100 * ratio, 100 * max_overhead, off_sec, on_sec))
        else:
            verdict = "ok  "
        print("%s %s: off %.6fs, on %.6fs (%+.2f%%) [%s]"
              % (verdict, name, off_sec, on_sec, 100 * ratio,
                 off_kind or "?"))
    if pairs == 0:
        failures.append("%s: no recorder_on/recorder_off pair found" % path)
    for f in failures:
        print("FAIL %s" % f)
    if not failures:
        print("ok   %s: recorder overhead within +%.2f%% on %d pair(s)"
              % (os.path.basename(path), 100 * max_overhead, pairs))
    return 1 if failures else 0


def self_test():
    def report(records):
        return {"schema": SCHEMA, "bench": "demo", "records": records}

    def record(name, execute, wall=1.0, counters=None):
        rec = {"name": name, "n": 4, "wall_seconds": wall,
               "counters": counters or {"heap_cells_allocated": 10,
                                        "gc_runs": 1}}
        if execute is not None:
            rec["execute_seconds"] = execute
        return rec

    base = report([record("a", 0.100), record("b", 0.100)])
    cases = [
        ("identical reports pass",
         base, report([record("a", 0.100), record("b", 0.100)]), [], True),
        ("5% regression under a 10% threshold passes",
         base, report([record("a", 0.105), record("b", 0.100)]), [], True),
        ("20% regression fails",
         base, report([record("a", 0.120), record("b", 0.100)]), [], False),
        ("20% speedup passes",
         base, report([record("a", 0.080), record("b", 0.100)]), [], True),
        ("missing record fails",
         base, report([record("a", 0.100)]), [], False),
        ("new record does not gate",
         base, report([record("a", 0.100), record("b", 0.100),
                       record("c", 9.9)]), [], True),
        ("sub-floor record never gates",
         report([record("a", 0.0001)]), report([record("a", 0.0009)]),
         [], True),
        ("wall time is the fallback",
         report([record("a", None, wall=0.100)]),
         report([record("a", None, wall=0.200)]), [], False),
        ("counter drift reports but passes by default",
         base,
         report([record("a", 0.100,
                        counters={"heap_cells_allocated": 11, "gc_runs": 1}),
                 record("b", 0.100)]), [], True),
        ("counter drift fails under --strict-counters",
         base,
         report([record("a", 0.100,
                        counters={"heap_cells_allocated": 11, "gc_runs": 1}),
                 record("b", 0.100)]), ["--strict-counters"], False),
        ("tighter threshold gates a 5% regression",
         base, report([record("a", 0.105), record("b", 0.100)]),
         ["--max-time-regress", "0.01"], False),
    ]

    def pair(on, off):
        return report([record("obs_overhead/x/recorder_on", on),
                       record("obs_overhead/x/recorder_off", off)])

    overhead_cases = [
        ("1% overhead under the 2% gate passes",
         pair(0.101, 0.100), [], True),
        ("5% overhead fails the 2% gate",
         pair(0.105, 0.100), [], False),
        ("recorder faster than baseline passes",
         pair(0.095, 0.100), [], True),
        ("sub-floor pair never gates",
         pair(0.0009, 0.0001), [], True),
        ("missing recorder_on sibling fails",
         report([record("obs_overhead/x/recorder_off", 0.1)]), [], False),
        ("report without any pair fails",
         report([record("a", 0.1)]), [], False),
        ("tighter --max-overhead 0 gates any overhead",
         pair(0.101, 0.100), ["--max-overhead", "0"], False),
        ("zero overhead passes --max-overhead 0",
         pair(0.100, 0.100), ["--max-overhead", "0"], True),
    ]

    failures = 0
    with tempfile.TemporaryDirectory(prefix="eal-bench-diff-") as tmp:
        for label, doc, extra, expect_ok in overhead_cases:
            rp = os.path.join(tmp, "overhead.json")
            with open(rp, "w") as f:
                json.dump(doc, f)
            code = main(["bench_diff.py", "--overhead", rp] + extra,
                        quiet=True)
            got_ok = code == 0
            status = "ok  " if got_ok == expect_ok else "FAIL"
            if got_ok != expect_ok:
                failures += 1
            print("%s self-test: %s (pass=%s, expected %s)"
                  % (status, label, got_ok, expect_ok))
        for label, base_doc, cur_doc, extra, expect_ok in cases:
            bp = os.path.join(tmp, "base.json")
            cp = os.path.join(tmp, "cur.json")
            with open(bp, "w") as f:
                json.dump(base_doc, f)
            with open(cp, "w") as f:
                json.dump(cur_doc, f)
            code = main(["bench_diff.py", bp, cp] + extra, quiet=True)
            got_ok = code == 0
            status = "ok  " if got_ok == expect_ok else "FAIL"
            if got_ok != expect_ok:
                failures += 1
            print("%s self-test: %s (pass=%s, expected %s)"
                  % (status, label, got_ok, expect_ok))
        with open(os.path.join(tmp, "bad.json"), "w") as f:
            f.write("{ not json")
        if main(["bench_diff.py", os.path.join(tmp, "bad.json"),
                 os.path.join(tmp, "bad.json")], quiet=True) != 0:
            print("ok   self-test: malformed JSON rejected")
        else:
            print("FAIL self-test: malformed JSON accepted")
            failures += 1
    return 0 if failures == 0 else 1


def main(argv, quiet=False):
    args = argv[1:]
    if args and args[0] == "--self-test":
        return self_test()
    max_regress = 0.10
    min_seconds = 0.005
    max_overhead = 0.02
    strict_counters = False
    overhead = False
    paths = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--max-time-regress" and i + 1 < len(args):
            max_regress = float(args[i + 1])
            i += 2
        elif arg == "--min-seconds" and i + 1 < len(args):
            min_seconds = float(args[i + 1])
            i += 2
        elif arg == "--max-overhead" and i + 1 < len(args):
            max_overhead = float(args[i + 1])
            i += 2
        elif arg == "--overhead":
            overhead = True
            i += 1
        elif arg == "--strict-counters":
            strict_counters = True
            i += 1
        elif arg.startswith("-"):
            print(__doc__)
            return 2
        else:
            paths.append(arg)
            i += 1
    if len(paths) != (1 if overhead else 2):
        print(__doc__)
        return 2

    def run():
        if overhead:
            return run_overhead(paths[0], max_overhead, min_seconds)
        return run_diff(paths[0], paths[1], max_regress, min_seconds,
                        strict_counters)

    if quiet:
        import io
        import contextlib
        with contextlib.redirect_stdout(io.StringIO()):
            return run()
    return run()


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate BENCH_*.json files against the eal-bench-v1 schema.

The bench binaries (bench/) write one BENCH_<name>.json per run with
their wall times and storage counters -- the machine-readable perf
trajectory described in docs/OBSERVABILITY.md.  This checker is the
schema's executable definition; it is wired into ctest (tier2) so a
bench that drifts from the schema fails the build's test suite, not a
downstream dashboard.

Usage:
  check_bench_json.py FILE [FILE...]       validate existing report files
  check_bench_json.py --run BIN [BIN...]   run each bench binary
                                           (benchmarks filtered out, sweep
                                           only) in a scratch dir, then
                                           validate every BENCH_*.json the
                                           batch wrote -- every JSON-writing
                                           bench belongs on this list, so a
                                           report that drifts from the
                                           schema cannot hide behind a
                                           hard-coded file list
  check_bench_json.py --self-test          exercise the validator itself

Exit status: 0 if everything validates, 1 otherwise.

Only the Python standard library is used.
"""

import os
import subprocess
import sys
import tempfile

import schema_common
from schema_common import fail, is_count, is_number

SCHEMA = "eal-bench-v1"

# Counters every record must carry: the RuntimeStats fields serialized by
# RuntimeStats::toJson() (src/runtime/RuntimeStats.h).  total_cells_allocated
# is derived and must equal the sum of the three allocation classes.
REQUIRED_COUNTERS = [
    "heap_cells_allocated",
    "stack_cells_allocated",
    "region_cells_allocated",
    "total_cells_allocated",
    "dcons_reuses",
    "gc_runs",
    "cells_marked",
    "cells_swept",
]


def check_counters(errors, path, label, counters):
    if not isinstance(counters, dict):
        fail(errors, path, "%s: 'counters' is not an object" % label)
        return
    for key in REQUIRED_COUNTERS:
        value = counters.get(key)
        if value is None:
            fail(errors, path, "%s: missing counter '%s'" % (label, key))
        elif not is_count(value):
            fail(errors, path,
                 "%s: counter '%s' is not a non-negative integer: %r"
                 % (label, key, value))
    expected_total = sum(
        counters.get(k, 0)
        for k in ("heap_cells_allocated", "stack_cells_allocated",
                  "region_cells_allocated")
        if isinstance(counters.get(k), int))
    total = counters.get("total_cells_allocated")
    if isinstance(total, int) and total != expected_total:
        fail(errors, path,
             "%s: total_cells_allocated=%d but heap+stack+region=%d"
             % (label, total, expected_total))


def check_record(errors, path, index, record):
    label = "records[%d]" % index
    if not isinstance(record, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    name = record.get("name")
    if not isinstance(name, str) or not name:
        fail(errors, path, "%s: 'name' is not a non-empty string" % label)
    else:
        label = "records[%d] (%s)" % (index, name)
    n = record.get("n")
    if not is_count(n):
        fail(errors, path, "%s: 'n' is not a non-negative integer" % label)
    wall = record.get("wall_seconds")
    if not is_number(wall):
        fail(errors, path, "%s: 'wall_seconds' is not a number" % label)
    elif wall < 0:
        fail(errors, path, "%s: 'wall_seconds' is negative" % label)
    if "counters" not in record:
        fail(errors, path, "%s: missing 'counters'" % label)
    else:
        check_counters(errors, path, label, record["counters"])


def check_file(path):
    """Validate one report file; returns a list of error strings."""
    doc, errors = schema_common.load_document(path, SCHEMA)
    if doc is None:
        return errors
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        fail(errors, path, "'bench' is not a non-empty string")
    records = doc.get("records")
    if not isinstance(records, list):
        fail(errors, path, "'records' is not an array")
        return errors
    if not records:
        fail(errors, path, "'records' is empty")
    names = set()
    for i, record in enumerate(records):
        check_record(errors, path, i, record)
        if isinstance(record, dict) and isinstance(record.get("name"), str):
            if record["name"] in names:
                fail(errors, path,
                     "duplicate record name %r" % record["name"])
            names.add(record["name"])
    return errors


def validate(paths):
    return schema_common.validate(paths, check_file)


def run_and_validate(binaries):
    binaries = [os.path.abspath(b) for b in binaries]
    ok = True
    with tempfile.TemporaryDirectory(prefix="eal-bench-json-") as workdir:
        for binary in binaries:
            # The sweep (which writes the JSON) always runs; the filter
            # keeps the google-benchmark timing loops out of the test's
            # budget.
            before = set(os.listdir(workdir))
            proc = subprocess.run(
                [binary, "--benchmark_filter=__none__"],
                cwd=workdir, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT)
            sys.stdout.buffer.write(proc.stdout)
            if proc.returncode != 0:
                print("FAIL %s: exit status %d" % (binary, proc.returncode))
                ok = False
            elif not any(
                    f.startswith("BENCH_") and f.endswith(".json")
                    for f in set(os.listdir(workdir)) - before):
                print("FAIL %s: wrote no BENCH_*.json" % binary)
                ok = False
        reports = sorted(
            os.path.join(workdir, f) for f in os.listdir(workdir)
            if f.startswith("BENCH_") and f.endswith(".json"))
        if reports and validate(reports) != 0:
            ok = False
    return 0 if ok else 1


def self_test():
    good = {
        "schema": SCHEMA,
        "bench": "demo",
        "records": [{
            "name": "demo/n=4/base",
            "n": 4,
            "wall_seconds": 0.25,
            "counters": {
                "heap_cells_allocated": 10,
                "stack_cells_allocated": 4,
                "region_cells_allocated": 0,
                "total_cells_allocated": 14,
                "dcons_reuses": 0,
                "gc_runs": 1,
                "cells_marked": 3,
                "cells_swept": 7,
            },
        }],
    }

    broken = schema_common.mutator(good)

    cases = [
        ("valid document", good, True),
        ("wrong schema tag",
         broken(lambda d: d.update(schema="v0")), False),
        ("empty records",
         broken(lambda d: d.update(records=[])), False),
        ("negative wall time",
         broken(lambda d: d["records"][0].update(wall_seconds=-1)), False),
        ("missing counter",
         broken(lambda d: d["records"][0]["counters"].pop("gc_runs")),
         False),
        ("inconsistent total",
         broken(lambda d: d["records"][0]["counters"].update(
             total_cells_allocated=999)), False),
        ("boolean n",
         broken(lambda d: d["records"][0].update(n=True)), False),
        ("duplicate names",
         broken(lambda d: d["records"].append(d["records"][0])), False),
    ]
    return schema_common.run_self_test(
        cases, check_file, prefix="eal-bench-selftest-", filename="BENCH_case.json")


def main(argv):
    if len(argv) >= 2 and argv[1] == "--run":
        if len(argv) < 3:
            print(__doc__)
            return 2
        return run_and_validate(argv[2:])
    return schema_common.dispatch(argv, __doc__, check_file, self_test)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate eal --explain-json output against the eal-explain-v1 schema.

`eal explain FILE --explain-json=OUT.json` (and any other command given
--explain-json) writes the why-provenance graph and the blame chains --
one chain per allocation site of the final program, each a minimal path
from the site to the program point that decided its storage class -- as
one JSON document (docs/EXPLAIN.md).  This checker is the schema's
executable definition; ctest runs it over real CLI output so a drift
fails the test suite, not a downstream consumer.

Usage:
  check_explain_json.py FILE [FILE...]   validate existing report files
  check_explain_json.py --self-test      exercise the validator itself

Exit status: 0 if everything validates, 1 otherwise.

Only the Python standard library is used.
"""

import re
import sys

import schema_common
from schema_common import fail, is_count

SCHEMA = "eal-explain-v1"

CODE_RE = re.compile(r"^EAL-[A-Z]\d{3}$")
FACT_KINDS = ("binding", "apply", "query", "sharing", "decision", "finding",
              "liveness", "speculation")
PRIMS = ("cons", "mkpair")
STORAGES = ("heap", "stack", "region")
GRAPH_COUNTERS = ("facts", "edges", "raises", "max_depth")


def is_fact_ref(value, num_facts):
    return is_count(value) and value < num_facts


def check_step(errors, path, label, index, step, num_facts):
    slabel = "%s.steps[%d]" % (label, index)
    if not isinstance(step, dict):
        fail(errors, path, "%s is not an object" % slabel)
        return
    for key in ("title", "detail"):
        value = step.get(key)
        if not isinstance(value, str) or not value:
            fail(errors, path, "%s: '%s' is not a non-empty string"
                 % (slabel, key))
    for key in ("line", "col"):
        if not is_count(step.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (slabel, key))
    fact = step.get("fact")
    if fact is not None and not is_fact_ref(fact, num_facts):
        fail(errors, path, "%s: 'fact' %r is neither null nor a valid "
             "fact id" % (slabel, fact))


def check_chain(errors, path, index, chain, num_facts):
    label = "chains[%d]" % index
    if not isinstance(chain, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    site = chain.get("site")
    if not isinstance(site, dict):
        fail(errors, path, "%s: 'site' is not an object" % label)
    else:
        if not is_count(site.get("id")):
            fail(errors, path, "%s: site 'id' is not a non-negative "
                 "integer" % label)
        # Every chain is anchored at a real source position (1-based).
        for key in ("line", "col"):
            value = site.get(key)
            if not is_count(value) or value < 1:
                fail(errors, path, "%s: site '%s' is not a positive "
                     "integer" % (label, key))
        if site.get("prim") not in PRIMS:
            fail(errors, path, "%s: site 'prim' is %r, expected one of %s"
                 % (label, site.get("prim"), list(PRIMS)))
        storage = site.get("storage")
        if storage not in STORAGES:
            fail(errors, path, "%s: site 'storage' is %r, expected one "
                 "of %s" % (label, storage, list(STORAGES)))
        code = site.get("code")
        if code is not None and (not isinstance(code, str)
                                 or not CODE_RE.match(code)):
            fail(errors, path, "%s: site 'code' %r is neither null nor "
                 "an EAL-Xnnn code" % (label, code))
        # Only sites left on the GC heap carry a finding code.
        if storage == "heap" and code is None:
            fail(errors, path, "%s: a heap site must carry a finding "
                 "code" % label)
        if storage in ("stack", "region") and code is not None:
            fail(errors, path, "%s: a %s site must not carry a finding "
                 "code, got %r" % (label, storage, code))
    steps = chain.get("steps")
    if not isinstance(steps, list) or not steps:
        fail(errors, path, "%s: 'steps' is not a non-empty array" % label)
    else:
        for j, step in enumerate(steps):
            check_step(errors, path, label, j, step, num_facts)
    facts = chain.get("facts")
    if not isinstance(facts, list):
        fail(errors, path, "%s: 'facts' is not an array" % label)
    else:
        for j, ref in enumerate(facts):
            if not is_fact_ref(ref, num_facts):
                fail(errors, path, "%s: facts[%d] %r is not a valid fact "
                     "id" % (label, j, ref))


def check_fact(errors, path, index, fact, num_facts):
    label = "facts[%d]" % index
    if not isinstance(fact, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    if fact.get("id") != index:
        fail(errors, path, "%s: 'id' is %r, expected the array index %d"
             % (label, fact.get("id"), index))
    if fact.get("kind") not in FACT_KINDS:
        fail(errors, path, "%s: 'kind' is %r, expected one of %s"
             % (label, fact.get("kind"), list(FACT_KINDS)))
    label_str = fact.get("label")
    if not isinstance(label_str, str) or not label_str:
        fail(errors, path, "%s: 'label' is not a non-empty string" % label)
    # equation/result may legitimately be empty (e.g. an anchor fact),
    # but must be strings.
    for key in ("equation", "result"):
        if not isinstance(fact.get(key), str):
            fail(errors, path, "%s: '%s' is not a string" % (label, key))
    for key in ("line", "col"):
        if not is_count(fact.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))
    deps = fact.get("deps")
    if not isinstance(deps, list):
        fail(errors, path, "%s: 'deps' is not an array" % label)
    else:
        for j, dep in enumerate(deps):
            if not is_fact_ref(dep, num_facts):
                fail(errors, path, "%s: deps[%d] %r is not a valid fact "
                     "id" % (label, j, dep))
            elif dep == index:
                fail(errors, path, "%s: deps[%d] is a self-edge" % (label, j))
    raises = fact.get("raises")
    if not isinstance(raises, list):
        fail(errors, path, "%s: 'raises' is not an array" % label)
        return
    last_round = -1
    for j, event in enumerate(raises):
        rlabel = "%s.raises[%d]" % (label, j)
        if not isinstance(event, dict):
            fail(errors, path, "%s is not an object" % rlabel)
            continue
        rnd = event.get("round")
        if not is_count(rnd):
            fail(errors, path, "%s: 'round' is not a non-negative integer"
                 % rlabel)
        else:
            # The fixpoint only ever raises monotonically, round by round.
            if rnd < last_round:
                fail(errors, path, "%s: rounds are not non-decreasing"
                     % rlabel)
            last_round = rnd
        value = event.get("value")
        if not isinstance(value, str) or not value:
            fail(errors, path, "%s: 'value' is not a non-empty string"
                 % rlabel)
        deps = event.get("deps")
        if not isinstance(deps, list):
            fail(errors, path, "%s: 'deps' is not an array" % rlabel)
        else:
            for k, dep in enumerate(deps):
                if not is_fact_ref(dep, num_facts):
                    fail(errors, path, "%s: deps[%d] %r is not a valid "
                         "fact id" % (rlabel, k, dep))


def check_file(path):
    """Validate one report file; returns a list of error strings."""
    doc, errors = schema_common.load_document(path, SCHEMA)
    if doc is None:
        return errors
    for key in ("command", "file"):
        value = doc.get(key)
        if not isinstance(value, str) or not value:
            fail(errors, path, "'%s' is not a non-empty string" % key)
    if not isinstance(doc.get("success"), bool):
        fail(errors, path, "'success' is not a boolean")
    graph = doc.get("graph")
    if not isinstance(graph, dict):
        fail(errors, path, "'graph' is not an object")
        graph = {}
    for key in GRAPH_COUNTERS:
        if not is_count(graph.get(key)):
            fail(errors, path, "graph: '%s' is not a non-negative integer"
                 % key)
    facts = doc.get("facts")
    if not isinstance(facts, list):
        fail(errors, path, "'facts' is not an array")
        facts = []
    num_facts = len(facts)
    if is_count(graph.get("facts")) and graph["facts"] != num_facts:
        fail(errors, path, "graph: 'facts' is %d but the facts array has "
             "%d entries" % (graph["facts"], num_facts))
    for i, fact in enumerate(facts):
        check_fact(errors, path, i, fact, num_facts)
    chains = doc.get("chains")
    if not isinstance(chains, list):
        fail(errors, path, "'chains' is not an array")
    else:
        for i, chain in enumerate(chains):
            check_chain(errors, path, i, chain, num_facts)
    return errors


def validate(paths):
    return schema_common.validate(paths, check_file)


def self_test():
    good = {
        "schema": SCHEMA,
        "command": "explain",
        "file": "<input>",
        "success": True,
        "graph": {"facts": 3, "edges": 2, "raises": 1, "max_depth": 2},
        "chains": [{
            "site": {"id": 17, "line": 11, "col": 23, "prim": "cons",
                     "storage": "heap", "code": "EAL-O001"},
            "steps": [
                {"title": "allocation site", "detail": "cons cell",
                 "line": 11, "col": 23, "fact": None},
                {"title": "escape verdict",
                 "detail": "L(append, 2) = <1,1> [§4.2]",
                 "line": 3, "col": 1, "fact": 2},
                {"title": "escaping return",
                 "detail": "the result carries 1 spine back to the caller",
                 "line": 3, "col": 1, "fact": 0},
            ],
            "facts": [2, 0],
        }],
        "facts": [
            {"id": 0, "kind": "binding", "label": "append",
             "equation": "§4.1 letrec", "line": 3, "col": 1,
             "result": "<0,0>+fn(1)", "deps": [],
             "raises": [{"round": 1, "value": "<0,0>+fn(1)", "deps": []}]},
            {"id": 1, "kind": "apply", "label": "append @ call",
             "equation": "§4.1 apply", "line": 5, "col": 4,
             "result": "<1,1>", "deps": [0], "raises": []},
            {"id": 2, "kind": "query", "label": "L(append, 2)",
             "equation": "§4.2", "line": 3, "col": 1,
             "result": "<1,1>", "deps": [0], "raises": []},
        ],
    }

    broken = schema_common.mutator(good)

    cases = [
        ("valid document", good, True),
        ("stack site with null code",
         broken(lambda d: d["chains"][0]["site"].update(
             storage="stack", code=None)), True),
        ("empty chains",
         broken(lambda d: d.update(chains=[])), True),
        ("wrong schema tag",
         broken(lambda d: d.update(schema="v0")), False),
        ("missing success",
         broken(lambda d: d.pop("success")), False),
        ("missing graph counter",
         broken(lambda d: d["graph"].pop("edges")), False),
        ("graph fact count disagrees with facts array",
         broken(lambda d: d["graph"].update(facts=99)), False),
        ("liveness fact kind accepted",
         broken(lambda d: d["facts"][2].update(
             kind="liveness", label="site 17 demand",
             equation="docs/LIVENESS.md join", result="<inf,car>")), True),
        ("unknown fact kind",
         broken(lambda d: d["facts"][0].update(kind="lemma")), False),
        ("fact id not the array index",
         broken(lambda d: d["facts"][1].update(id=7)), False),
        ("dangling dep",
         broken(lambda d: d["facts"][1].update(deps=[42])), False),
        ("self-edge dep",
         broken(lambda d: d["facts"][1].update(deps=[1])), False),
        ("raise rounds decrease",
         broken(lambda d: d["facts"][0].update(raises=[
             {"round": 2, "value": "a", "deps": []},
             {"round": 1, "value": "b", "deps": []}])), False),
        ("heap site without finding code",
         broken(lambda d: d["chains"][0]["site"].update(code=None)), False),
        ("bad finding code",
         broken(lambda d: d["chains"][0]["site"].update(code="O001")), False),
        ("unknown storage class",
         broken(lambda d: d["chains"][0]["site"].update(
             storage="tls", code=None)), False),
        ("chain without steps",
         broken(lambda d: d["chains"][0].update(steps=[])), False),
        ("step fact dangling",
         broken(lambda d: d["chains"][0]["steps"][1].update(fact=42)), False),
        ("chain fact list dangling",
         broken(lambda d: d["chains"][0].update(facts=[42])), False),
    ]
    return schema_common.run_self_test(
        cases, check_file, prefix="eal-explain-selftest-", filename="explain.json")


def main(argv):
    return schema_common.dispatch(argv, __doc__, check_file, self_test)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

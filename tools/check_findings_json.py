#!/usr/bin/env python3
"""Validate eal --check-json output against the eal-check-v1 schema.

`eal check FILE --check-json=OUT.json` (and any other command given
--check-json) writes the lint findings, the optimization-blocked
explanations, and -- when --oracle ran -- the dynamic escape oracle's
counters and violations as one JSON document (docs/CHECKING.md).  This
checker is the schema's executable definition; ctest runs it over real
CLI output so a drift fails the test suite, not a downstream consumer.

Usage:
  check_findings_json.py FILE [FILE...]   validate existing report files
  check_findings_json.py --self-test      exercise the validator itself

Exit status: 0 if everything validates, 1 otherwise.

Only the Python standard library is used.
"""

import json
import re
import sys
import tempfile
import os

SCHEMA = "eal-check-v1"

CODE_RE = re.compile(r"^EAL-[A-Z]\d{3}$")
SEVERITIES = ("note", "warning", "error")

ORACLE_COUNTERS = [
    "activations",
    "claims_checked",
    "cells_tracked",
    "heap_cells_escaped",
    "heap_cells_unescaped",
    "imprecise_claims",
    "alias_exemptions",
]

VIOLATION_INTS = [
    "arg_index",
    "protected_spines",
    "spine_level",
    "call_line",
    "call_col",
    "alloc_site",
    "alloc_line",
    "alloc_col",
]


def fail(errors, path, message):
    errors.append("%s: %s" % (path, message))


def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_finding(errors, path, index, finding):
    label = "findings[%d]" % index
    if not isinstance(finding, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    code = finding.get("code")
    if not isinstance(code, str) or not CODE_RE.match(code):
        fail(errors, path, "%s: 'code' %r does not match EAL-Xnnn"
             % (label, code))
    if finding.get("severity") not in SEVERITIES:
        fail(errors, path, "%s: 'severity' %r not in %r"
             % (label, finding.get("severity"), SEVERITIES))
    for key in ("line", "col"):
        if not is_count(finding.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))
    message = finding.get("message")
    if not isinstance(message, str) or not message:
        fail(errors, path, "%s: 'message' is not a non-empty string" % label)
    # Optional why-provenance: fact ids into the matching --explain-json
    # graph (docs/EXPLAIN.md).  Only emitted when a recorder ran.
    if "blame" in finding:
        blame = finding["blame"]
        if not isinstance(blame, list):
            fail(errors, path, "%s: 'blame' is not an array" % label)
        else:
            for j, ref in enumerate(blame):
                if not is_count(ref):
                    fail(errors, path, "%s: blame[%d] %r is not a "
                         "non-negative integer" % (label, j, ref))


def check_violation(errors, path, index, violation):
    label = "oracle.violations[%d]" % index
    if not isinstance(violation, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    for key in ("kind", "function", "message"):
        value = violation.get(key)
        if not isinstance(value, str) or not value:
            fail(errors, path, "%s: '%s' is not a non-empty string"
                 % (label, key))
    for key in VIOLATION_INTS:
        if not is_count(violation.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))


def check_oracle(errors, path, oracle):
    if not isinstance(oracle, dict):
        fail(errors, path, "'oracle' is not an object")
        return
    for key in ORACLE_COUNTERS:
        if not is_count(oracle.get(key)):
            fail(errors, path,
                 "oracle: '%s' is not a non-negative integer" % key)
    violations = oracle.get("violations")
    if not isinstance(violations, list):
        fail(errors, path, "oracle: 'violations' is not an array")
        return
    for i, violation in enumerate(violations):
        check_violation(errors, path, i, violation)


def check_file(path):
    """Validate one report file; returns a list of error strings."""
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        return ["%s: cannot read: %s" % (path, e)]
    except ValueError as e:
        return ["%s: not valid JSON: %s" % (path, e)]
    if not isinstance(doc, dict):
        return ["%s: top level is not an object" % path]
    if doc.get("schema") != SCHEMA:
        fail(errors, path, "'schema' is %r, expected %r"
             % (doc.get("schema"), SCHEMA))
    for key in ("command", "file"):
        value = doc.get(key)
        if not isinstance(value, str) or not value:
            fail(errors, path, "'%s' is not a non-empty string" % key)
    if not isinstance(doc.get("success"), bool):
        fail(errors, path, "'success' is not a boolean")
    findings = doc.get("findings")
    if not isinstance(findings, list):
        fail(errors, path, "'findings' is not an array")
    else:
        for i, finding in enumerate(findings):
            check_finding(errors, path, i, finding)
    if "oracle" in doc:
        check_oracle(errors, path, doc["oracle"])
    return errors


def validate(paths):
    ok = True
    for path in paths:
        errors = check_file(path)
        if errors:
            ok = False
            for e in errors:
                print("FAIL %s" % e)
        else:
            print("ok   %s" % path)
    return 0 if ok else 1


def self_test():
    good = {
        "schema": SCHEMA,
        "command": "check",
        "file": "<input>",
        "success": True,
        "findings": [{
            "code": "EAL-L001",
            "severity": "warning",
            "line": 2,
            "col": 9,
            "message": "unused let binding 'y'",
        }],
        "oracle": {
            "activations": 59,
            "claims_checked": 16,
            "cells_tracked": 40,
            "heap_cells_escaped": 36,
            "heap_cells_unescaped": 4,
            "imprecise_claims": 0,
            "alias_exemptions": 0,
            "violations": [{
                "kind": "injected-claim",
                "function": "append",
                "arg_index": 1,
                "protected_spines": 1,
                "spine_level": 1,
                "call_line": 3,
                "call_col": 4,
                "alloc_site": 17,
                "alloc_line": 2,
                "alloc_col": 20,
                "message": "soundness violation",
            }],
        },
    }

    def broken(mutate):
        doc = json.loads(json.dumps(good))
        mutate(doc)
        return doc

    cases = [
        ("valid document", good, True),
        ("no oracle section",
         broken(lambda d: d.pop("oracle")), True),
        ("finding with blame chain",
         broken(lambda d: d["findings"][0].update(blame=[230, 221])), True),
        ("dead-data finding (EAL-D001)",
         broken(lambda d: d["findings"][0].update(
             code="EAL-D001",
             message="dead data: no field of any cell allocated here is "
                     "ever read (demand dead)")), True),
        ("dead-spine note (EAL-D002)",
         broken(lambda d: d["findings"][0].update(
             code="EAL-D002", severity="note",
             message="dead spine suffix: only the first 2 spine cell(s) "
                     "are ever demanded")), True),
        ("liveness-blocked note (EAL-D004)",
         broken(lambda d: d["findings"][0].update(
             code="EAL-D004", severity="note",
             message="liveness-blocked optimization")), True),
        ("blame not an array",
         broken(lambda d: d["findings"][0].update(blame=7)), False),
        ("negative blame entry",
         broken(lambda d: d["findings"][0].update(blame=[-1])), False),
        ("wrong schema tag",
         broken(lambda d: d.update(schema="v0")), False),
        ("missing success",
         broken(lambda d: d.pop("success")), False),
        ("bad finding code",
         broken(lambda d: d["findings"][0].update(code="L001")), False),
        ("bad severity",
         broken(lambda d: d["findings"][0].update(severity="fatal")), False),
        ("negative line",
         broken(lambda d: d["findings"][0].update(line=-1)), False),
        ("boolean col",
         broken(lambda d: d["findings"][0].update(col=True)), False),
        ("empty message",
         broken(lambda d: d["findings"][0].update(message="")), False),
        ("missing oracle counter",
         broken(lambda d: d["oracle"].pop("claims_checked")), False),
        ("violations not a list",
         broken(lambda d: d["oracle"].update(violations={})), False),
        ("violation missing kind",
         broken(lambda d: d["oracle"]["violations"][0].pop("kind")), False),
    ]
    failures = 0
    with tempfile.TemporaryDirectory(prefix="eal-check-selftest-") as tmp:
        for label, doc, expect_ok in cases:
            path = os.path.join(tmp, "check.json")
            with open(path, "w") as f:
                json.dump(doc, f)
            got_ok = not check_file(path)
            status = "ok  " if got_ok == expect_ok else "FAIL"
            if got_ok != expect_ok:
                failures += 1
            print("%s self-test: %s (valid=%s, expected %s)"
                  % (status, label, got_ok, expect_ok))
        path = os.path.join(tmp, "bad.json")
        with open(path, "w") as f:
            f.write("{ not json")
        if check_file(path):
            print("ok   self-test: malformed JSON rejected")
        else:
            print("FAIL self-test: malformed JSON accepted")
            failures += 1
    return 0 if failures == 0 else 1


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(__doc__)
        return 2
    return validate(argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate eal --check-json output against the eal-check-v1 schema.

`eal check FILE --check-json=OUT.json` (and any other command given
--check-json) writes the lint findings, the optimization-blocked
explanations, and -- when --oracle ran -- the dynamic escape oracle's
counters and violations as one JSON document (docs/CHECKING.md).  This
checker is the schema's executable definition; ctest runs it over real
CLI output so a drift fails the test suite, not a downstream consumer.

Usage:
  check_findings_json.py FILE [FILE...]   validate existing report files
  check_findings_json.py --self-test      exercise the validator itself

Exit status: 0 if everything validates, 1 otherwise.

Only the Python standard library is used.
"""

import re
import sys

import schema_common
from schema_common import fail, is_count

SCHEMA = "eal-check-v1"

CODE_RE = re.compile(r"^EAL-[A-Z]\d{3}$")
SEVERITIES = ("note", "warning", "error")

ORACLE_COUNTERS = [
    "activations",
    "claims_checked",
    "cells_tracked",
    "heap_cells_escaped",
    "heap_cells_unescaped",
    "imprecise_claims",
    "alias_exemptions",
]

VIOLATION_INTS = [
    "arg_index",
    "protected_spines",
    "spine_level",
    "call_line",
    "call_col",
    "alloc_site",
    "alloc_line",
    "alloc_col",
]


def check_finding(errors, path, index, finding):
    label = "findings[%d]" % index
    if not isinstance(finding, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    code = finding.get("code")
    if not isinstance(code, str) or not CODE_RE.match(code):
        fail(errors, path, "%s: 'code' %r does not match EAL-Xnnn"
             % (label, code))
    if finding.get("severity") not in SEVERITIES:
        fail(errors, path, "%s: 'severity' %r not in %r"
             % (label, finding.get("severity"), SEVERITIES))
    for key in ("line", "col"):
        if not is_count(finding.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))
    message = finding.get("message")
    if not isinstance(message, str) or not message:
        fail(errors, path, "%s: 'message' is not a non-empty string" % label)
    # Optional why-provenance: fact ids into the matching --explain-json
    # graph (docs/EXPLAIN.md).  Only emitted when a recorder ran.
    if "blame" in finding:
        blame = finding["blame"]
        if not isinstance(blame, list):
            fail(errors, path, "%s: 'blame' is not an array" % label)
        else:
            for j, ref in enumerate(blame):
                if not is_count(ref):
                    fail(errors, path, "%s: blame[%d] %r is not a "
                         "non-negative integer" % (label, j, ref))


def check_violation(errors, path, index, violation):
    label = "oracle.violations[%d]" % index
    if not isinstance(violation, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    for key in ("kind", "function", "message"):
        value = violation.get(key)
        if not isinstance(value, str) or not value:
            fail(errors, path, "%s: '%s' is not a non-empty string"
                 % (label, key))
    for key in VIOLATION_INTS:
        if not is_count(violation.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))


def check_oracle(errors, path, oracle):
    if not isinstance(oracle, dict):
        fail(errors, path, "'oracle' is not an object")
        return
    for key in ORACLE_COUNTERS:
        if not is_count(oracle.get(key)):
            fail(errors, path,
                 "oracle: '%s' is not a non-negative integer" % key)
    violations = oracle.get("violations")
    if not isinstance(violations, list):
        fail(errors, path, "oracle: 'violations' is not an array")
        return
    for i, violation in enumerate(violations):
        check_violation(errors, path, i, violation)


def check_file(path):
    """Validate one report file; returns a list of error strings."""
    doc, errors = schema_common.load_document(path, SCHEMA)
    if doc is None:
        return errors
    for key in ("command", "file"):
        value = doc.get(key)
        if not isinstance(value, str) or not value:
            fail(errors, path, "'%s' is not a non-empty string" % key)
    if not isinstance(doc.get("success"), bool):
        fail(errors, path, "'success' is not a boolean")
    findings = doc.get("findings")
    if not isinstance(findings, list):
        fail(errors, path, "'findings' is not an array")
    else:
        for i, finding in enumerate(findings):
            check_finding(errors, path, i, finding)
    if "oracle" in doc:
        check_oracle(errors, path, doc["oracle"])
    return errors


def validate(paths):
    return schema_common.validate(paths, check_file)


def self_test():
    good = {
        "schema": SCHEMA,
        "command": "check",
        "file": "<input>",
        "success": True,
        "findings": [{
            "code": "EAL-L001",
            "severity": "warning",
            "line": 2,
            "col": 9,
            "message": "unused let binding 'y'",
        }],
        "oracle": {
            "activations": 59,
            "claims_checked": 16,
            "cells_tracked": 40,
            "heap_cells_escaped": 36,
            "heap_cells_unescaped": 4,
            "imprecise_claims": 0,
            "alias_exemptions": 0,
            "violations": [{
                "kind": "injected-claim",
                "function": "append",
                "arg_index": 1,
                "protected_spines": 1,
                "spine_level": 1,
                "call_line": 3,
                "call_col": 4,
                "alloc_site": 17,
                "alloc_line": 2,
                "alloc_col": 20,
                "message": "soundness violation",
            }],
        },
    }

    broken = schema_common.mutator(good)

    cases = [
        ("valid document", good, True),
        ("no oracle section",
         broken(lambda d: d.pop("oracle")), True),
        ("finding with blame chain",
         broken(lambda d: d["findings"][0].update(blame=[230, 221])), True),
        ("dead-data finding (EAL-D001)",
         broken(lambda d: d["findings"][0].update(
             code="EAL-D001",
             message="dead data: no field of any cell allocated here is "
                     "ever read (demand dead)")), True),
        ("dead-spine note (EAL-D002)",
         broken(lambda d: d["findings"][0].update(
             code="EAL-D002", severity="note",
             message="dead spine suffix: only the first 2 spine cell(s) "
                     "are ever demanded")), True),
        ("liveness-blocked note (EAL-D004)",
         broken(lambda d: d["findings"][0].update(
             code="EAL-D004", severity="note",
             message="liveness-blocked optimization")), True),
        ("blame not an array",
         broken(lambda d: d["findings"][0].update(blame=7)), False),
        ("negative blame entry",
         broken(lambda d: d["findings"][0].update(blame=[-1])), False),
        ("wrong schema tag",
         broken(lambda d: d.update(schema="v0")), False),
        ("missing success",
         broken(lambda d: d.pop("success")), False),
        ("bad finding code",
         broken(lambda d: d["findings"][0].update(code="L001")), False),
        ("bad severity",
         broken(lambda d: d["findings"][0].update(severity="fatal")), False),
        ("negative line",
         broken(lambda d: d["findings"][0].update(line=-1)), False),
        ("boolean col",
         broken(lambda d: d["findings"][0].update(col=True)), False),
        ("empty message",
         broken(lambda d: d["findings"][0].update(message="")), False),
        ("missing oracle counter",
         broken(lambda d: d["oracle"].pop("claims_checked")), False),
        ("violations not a list",
         broken(lambda d: d["oracle"].update(violations={})), False),
        ("violation missing kind",
         broken(lambda d: d["oracle"]["violations"][0].pop("kind")), False),
    ]
    return schema_common.run_self_test(
        cases, check_file, prefix="eal-check-selftest-", filename="check.json")


def main(argv):
    return schema_common.dispatch(argv, __doc__, check_file, self_test)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate eal --live-json output against the eal-live-v1 schema.

`eal live FILE --live-json=OUT.json` (and any other command given
--live-json) writes the heap-liveness report -- per-function demand
summaries under result demand top, and the joined demand of every
allocation site of the final program -- as one JSON document
(docs/LIVENESS.md).  This checker is the schema's executable
definition; ctest runs it over real CLI output so a drift fails the
test suite, not a downstream consumer.

Demand encoding: "depth" is the spine depth, -1 meaning infinity;
"car"/"snd" are the element- and second-field flags; "rendered" is the
human form ("dead", "<inf,car>", "<2,car,snd>").  A normalized bottom
demand has depth 0 and both flags clear; "dead" on a site must agree
with that.

Usage:
  check_live_json.py FILE [FILE...]   validate existing report files
  check_live_json.py --self-test      exercise the validator itself

Exit status: 0 if everything validates, 1 otherwise.

Only the Python standard library is used.
"""

import sys

import schema_common
from schema_common import fail, is_count

SCHEMA = "eal-live-v1"

OPS = ("cons", "pair", "dcons")
SUMMARY_COUNTERS = ("rounds", "summaries", "functions", "sites", "dead_sites")


def check_demand(errors, path, label, obj):
    """Validates the depth/car/snd/rendered quadruple embedded in
    function params and sites; returns True when the demand is bottom."""
    depth = obj.get("depth")
    if not isinstance(depth, int) or isinstance(depth, bool) or depth < -1:
        fail(errors, path, "%s: 'depth' is %r, expected an integer >= -1"
             % (label, depth))
        depth = 0
    for key in ("car", "snd"):
        if not isinstance(obj.get(key), bool):
            fail(errors, path, "%s: '%s' is not a boolean" % (label, key))
    rendered = obj.get("rendered")
    if not isinstance(rendered, str) or not rendered:
        fail(errors, path, "%s: 'rendered' is not a non-empty string" % label)
    bottom = depth == 0 and not obj.get("car") and not obj.get("snd")
    # A normalized bottom demand renders as "dead" and vice versa.
    if isinstance(rendered, str) and rendered:
        if bottom != (rendered == "dead"):
            fail(errors, path, "%s: rendered %r disagrees with depth=%r "
                 "car=%r snd=%r" % (label, rendered, obj.get("depth"),
                                    obj.get("car"), obj.get("snd")))
    # Depth 0 clears the field flags (normalization invariant).
    if depth == 0 and (obj.get("car") or obj.get("snd")):
        fail(errors, path, "%s: depth 0 with a field flag set (demands "
             "must be normalized)" % label)
    return bottom


def check_function(errors, path, index, fn):
    label = "functions[%d]" % index
    if not isinstance(fn, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    if not isinstance(fn.get("name"), str) or not fn.get("name"):
        fail(errors, path, "%s: 'name' is not a non-empty string" % label)
    for key in ("line", "col"):
        if not is_count(fn.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))
    arity = fn.get("arity")
    if not is_count(arity):
        fail(errors, path, "%s: 'arity' is not a non-negative integer" % label)
        arity = None
    if not isinstance(fn.get("worst"), bool):
        fail(errors, path, "%s: 'worst' is not a boolean" % label)
    params = fn.get("params")
    if not isinstance(params, list):
        fail(errors, path, "%s: 'params' is not an array" % label)
        return
    if arity is not None and len(params) != arity:
        fail(errors, path, "%s: 'arity' is %d but 'params' has %d entries"
             % (label, arity, len(params)))
    for j, param in enumerate(params):
        plabel = "%s.params[%d]" % (label, j)
        if not isinstance(param, dict):
            fail(errors, path, "%s is not an object" % plabel)
            continue
        if param.get("index") != j:
            fail(errors, path, "%s: 'index' is %r, expected the array "
                 "index %d" % (plabel, param.get("index"), j))
        if not isinstance(param.get("name"), str) or not param.get("name"):
            fail(errors, path, "%s: 'name' is not a non-empty string"
                 % plabel)
        bottom = check_demand(errors, path, plabel, param)
        # A worst-cased function reports every parameter at top.
        if fn.get("worst") is True and (param.get("depth") != -1
                                        or not param.get("car")
                                        or not param.get("snd")):
            fail(errors, path, "%s: a worst-cased function must report "
                 "demand top on every parameter" % plabel)
        del bottom


def check_site(errors, path, index, site, seen_ids):
    label = "sites[%d]" % index
    if not isinstance(site, dict):
        fail(errors, path, "%s is not an object" % label)
        return False
    site_id = site.get("id")
    if not is_count(site_id):
        fail(errors, path, "%s: 'id' is not a non-negative integer" % label)
    elif site_id in seen_ids:
        fail(errors, path, "%s: duplicate site id %d" % (label, site_id))
    else:
        seen_ids.add(site_id)
    if site.get("op") not in OPS:
        fail(errors, path, "%s: 'op' is %r, expected one of %s"
             % (label, site.get("op"), list(OPS)))
    # Context "" is the program body; otherwise a binding name.
    if not isinstance(site.get("context"), str):
        fail(errors, path, "%s: 'context' is not a string" % label)
    # Every site is anchored at a real source position (1-based).
    for key in ("line", "col"):
        value = site.get(key)
        if not is_count(value) or value < 1:
            fail(errors, path, "%s: '%s' is not a positive integer"
                 % (label, key))
    bottom = check_demand(errors, path, label, site)
    dead = site.get("dead")
    if not isinstance(dead, bool):
        fail(errors, path, "%s: 'dead' is not a boolean" % label)
    elif dead != bottom:
        fail(errors, path, "%s: 'dead' is %r but the demand is %s"
             % (label, dead, "bottom" if bottom else "not bottom"))
    unreached = site.get("unreached")
    if not isinstance(unreached, bool):
        fail(errors, path, "%s: 'unreached' is not a boolean" % label)
    elif unreached and dead is False:
        # Unreached code allocates nothing; its demand can only be dead.
        fail(errors, path, "%s: 'unreached' site is not dead" % label)
    return isinstance(dead, bool) and dead


def check_file(path):
    """Validate one report file; returns a list of error strings."""
    doc, errors = schema_common.load_document(path, SCHEMA)
    if doc is None:
        return errors
    for key in ("command", "file"):
        value = doc.get(key)
        if not isinstance(value, str) or not value:
            fail(errors, path, "'%s' is not a non-empty string" % key)
    if not isinstance(doc.get("success"), bool):
        fail(errors, path, "'success' is not a boolean")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        fail(errors, path, "'summary' is not an object")
        summary = {}
    for key in SUMMARY_COUNTERS:
        if not is_count(summary.get(key)):
            fail(errors, path, "summary: '%s' is not a non-negative integer"
                 % key)
    if not isinstance(summary.get("converged"), bool):
        fail(errors, path, "summary: 'converged' is not a boolean")
    functions = doc.get("functions")
    if not isinstance(functions, list):
        fail(errors, path, "'functions' is not an array")
        functions = []
    if is_count(summary.get("functions")) \
            and summary["functions"] != len(functions):
        fail(errors, path, "summary: 'functions' is %d but the functions "
             "array has %d entries" % (summary["functions"], len(functions)))
    for i, fn in enumerate(functions):
        check_function(errors, path, i, fn)
    sites = doc.get("sites")
    if not isinstance(sites, list):
        fail(errors, path, "'sites' is not an array")
        sites = []
    if is_count(summary.get("sites")) and summary["sites"] != len(sites):
        fail(errors, path, "summary: 'sites' is %d but the sites array has "
             "%d entries" % (summary["sites"], len(sites)))
    seen_ids = set()
    dead = 0
    for i, site in enumerate(sites):
        dead += check_site(errors, path, i, site, seen_ids)
    if is_count(summary.get("dead_sites")) and summary["dead_sites"] != dead:
        fail(errors, path, "summary: 'dead_sites' is %d but %d site(s) are "
             "marked dead" % (summary["dead_sites"], dead))
    return errors


def validate(paths):
    return schema_common.validate(paths, check_file)


def self_test():
    good = {
        "schema": SCHEMA,
        "command": "live",
        "file": "<input>",
        "success": True,
        "summary": {"rounds": 4, "summaries": 6, "functions": 2,
                    "sites": 3, "dead_sites": 1, "converged": True},
        "functions": [
            {"name": "append", "line": 3, "col": 1, "arity": 2,
             "worst": False, "params": [
                 {"index": 0, "name": "x", "depth": -1, "car": True,
                  "snd": False, "rendered": "<inf,car>"},
                 {"index": 1, "name": "y", "depth": -1, "car": True,
                  "snd": True, "rendered": "<inf,car,snd>"}]},
            {"name": "id", "line": 6, "col": 1, "arity": 1,
             "worst": True, "params": [
                 {"index": 0, "name": "v", "depth": -1, "car": True,
                  "snd": True, "rendered": "<inf,car,snd>"}]},
        ],
        "sites": [
            {"id": 17, "op": "cons", "context": "append", "line": 4, "col": 6,
             "depth": -1, "car": True, "snd": True,
             "rendered": "<inf,car,snd>", "dead": False, "unreached": False},
            {"id": 29, "op": "pair", "context": "", "line": 8, "col": 2,
             "depth": 1, "car": False, "snd": True, "rendered": "<1,snd>",
             "dead": False, "unreached": False},
            {"id": 35, "op": "cons", "context": "", "line": 9, "col": 2,
             "depth": 0, "car": False, "snd": False, "rendered": "dead",
             "dead": True, "unreached": False},
        ],
    }

    broken = schema_common.mutator(good)

    cases = [
        ("valid document", good, True),
        ("empty functions and sites",
         broken(lambda d: (d.update(functions=[], sites=[]),
                           d["summary"].update(functions=0, sites=0,
                                               dead_sites=0))), True),
        ("unreached dead site",
         broken(lambda d: d["sites"][2].update(unreached=True)), True),
        ("wrong schema tag",
         broken(lambda d: d.update(schema="v0")), False),
        ("missing success",
         broken(lambda d: d.pop("success")), False),
        ("missing summary counter",
         broken(lambda d: d["summary"].pop("rounds")), False),
        ("non-boolean converged",
         broken(lambda d: d["summary"].update(converged=1)), False),
        ("function count disagrees with array",
         broken(lambda d: d["summary"].update(functions=5)), False),
        ("site count disagrees with array",
         broken(lambda d: d["summary"].update(sites=5)), False),
        ("dead count disagrees with dead flags",
         broken(lambda d: d["summary"].update(dead_sites=0)), False),
        ("param index not the array position",
         broken(lambda d: d["functions"][0]["params"][1].update(index=0)),
         False),
        ("arity disagrees with params",
         broken(lambda d: d["functions"][0].update(arity=3)), False),
        ("worst-cased function with a non-top param",
         broken(lambda d: d["functions"][1]["params"][0].update(
             depth=2, rendered="<2,car,snd>")), False),
        ("depth below -1",
         broken(lambda d: d["sites"][0].update(depth=-2)), False),
        ("depth 0 with car set",
         broken(lambda d: d["sites"][2].update(
             car=True, rendered="<0,car>")), False),
        ("rendered dead on a live demand",
         broken(lambda d: d["sites"][0].update(rendered="dead")), False),
        ("dead flag disagrees with demand",
         broken(lambda d: d["sites"][2].update(dead=False)), False),
        ("unreached site that is not dead",
         broken(lambda d: d["sites"][0].update(unreached=True)), False),
        ("unknown op",
         broken(lambda d: d["sites"][0].update(op="vector")), False),
        ("duplicate site ids",
         broken(lambda d: d["sites"][1].update(id=17)), False),
        ("zero site line",
         broken(lambda d: d["sites"][0].update(line=0)), False),
        ("missing unreached flag",
         broken(lambda d: d["sites"][0].pop("unreached")), False),
    ]
    return schema_common.run_self_test(
        cases, check_file, prefix="eal-live-selftest-", filename="live.json")


def main(argv):
    return schema_common.dispatch(argv, __doc__, check_file, self_test)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

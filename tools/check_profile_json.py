#!/usr/bin/env python3
"""Validate eal-profile-v1 files written by `eal profile --profile-json=`.

The profile report (docs/PROFILING.md) joins every static cons/pair/
dcons allocation site of the optimized program -- with its source
position, the storage class the optimizer planned for it, and why --
against what each engine's run actually observed there, plus per-engine
hot-path data (calling-context tree summary; exact opcode/proto counters
for the VM).  This checker is the schema's executable definition, wired
into ctest so a report that drifts fails the build's test suite, not a
downstream consumer.

Usage:
  check_profile_json.py FILE [FILE...]   validate report files
  check_profile_json.py --self-test      exercise the validator itself

Exit status: 0 if everything validates, 1 otherwise.

Only the Python standard library is used.
"""

import sys

import schema_common
from schema_common import fail, is_count

SCHEMA = "eal-profile-v1"

PLANNED = ("heap", "stack", "region", "reuse")
PRIMS = ("cons", "pair", "dcons")

# Per-engine counters every site entry must carry.
SITE_COUNTERS = [
    "allocs_heap", "allocs_stack", "allocs_region",
    "deaths_heap", "deaths_stack", "deaths_region",
    "reuses", "overwritten", "first_touches", "dead_cells",
]


def check_histogram(errors, path, label, hist):
    if hist is None:
        return  # site never recorded a lifetime
    if not isinstance(hist, dict):
        fail(errors, path, "%s: 'lifetime' is neither null nor an object"
             % label)
        return
    for key in ("count", "sum", "min", "max"):
        if not is_count(hist.get(key)):
            fail(errors, path,
                 "%s: lifetime '%s' is not a non-negative integer"
                 % (label, key))
    buckets = hist.get("buckets")
    if not isinstance(buckets, list) or not all(is_count(b) for b in buckets):
        fail(errors, path, "%s: lifetime 'buckets' is not an array of "
             "non-negative integers" % label)
    elif is_count(hist.get("count")) and sum(buckets) != hist["count"]:
        fail(errors, path, "%s: lifetime buckets sum to %d but count is %d"
             % (label, sum(buckets), hist["count"]))


def check_site_engines(errors, path, label, engines, engine_names):
    if not isinstance(engines, dict):
        fail(errors, path, "%s: 'engines' is not an object" % label)
        return
    for name in engines:
        if name not in engine_names:
            fail(errors, path, "%s: engine %r not in the top-level "
                 "engines list" % (label, name))
    for name, counters in engines.items():
        elabel = "%s engine %r" % (label, name)
        if not isinstance(counters, dict):
            fail(errors, path, "%s is not an object" % elabel)
            continue
        for key in SITE_COUNTERS:
            if not is_count(counters.get(key)):
                fail(errors, path,
                     "%s: '%s' is not a non-negative integer"
                     % (elabel, key))
        if "lifetime" not in counters:
            fail(errors, path, "%s: missing 'lifetime'" % elabel)
        else:
            check_histogram(errors, path, elabel, counters["lifetime"])


def check_site(errors, path, index, site, engine_names):
    label = "sites[%d]" % index
    if not isinstance(site, dict):
        fail(errors, path, "%s is not an object" % label)
        return None
    if not is_count(site.get("id")):
        fail(errors, path, "%s: 'id' is not a non-negative integer" % label)
    # Every site must resolve to a real source position (file:line:col
    # with 1-based line/col); clones made by the reuse transform inherit
    # the original's position.
    for key in ("line", "col"):
        value = site.get(key)
        if not is_count(value) or value < 1:
            fail(errors, path, "%s: '%s' is not a positive integer"
                 % (label, key))
    if site.get("prim") not in PRIMS:
        fail(errors, path, "%s: 'prim' is %r, expected one of %s"
             % (label, site.get("prim"), list(PRIMS)))
    if not isinstance(site.get("prim_value"), bool):
        fail(errors, path, "%s: 'prim_value' is not a boolean" % label)
    planned = site.get("planned")
    if planned not in PLANNED:
        fail(errors, path, "%s: 'planned' is %r, expected one of %s"
             % (label, planned, list(PLANNED)))
    elif site.get("prim") == "dcons" and planned != "reuse":
        fail(errors, path, "%s: a dcons site must be planned 'reuse', "
             "got %r" % (label, planned))
    why = site.get("why")
    if not isinstance(why, str) or not why:
        fail(errors, path, "%s: 'why' is not a non-empty string" % label)
    # Why-provenance anchor: a fact id into the matching --explain-json
    # graph, or null when no recorder ran / no fact backs the verdict
    # (docs/EXPLAIN.md).
    if "provenance_ref" not in site:
        fail(errors, path, "%s: missing 'provenance_ref'" % label)
    elif site["provenance_ref"] is not None \
            and not is_count(site["provenance_ref"]):
        fail(errors, path, "%s: 'provenance_ref' %r is neither null nor "
             "a non-negative integer" % (label, site["provenance_ref"]))
    if "engines" not in site:
        fail(errors, path, "%s: missing 'engines'" % label)
    else:
        check_site_engines(errors, path, label, site["engines"],
                           engine_names)
    return site.get("id") if is_count(site.get("id")) else None


def check_engine(errors, path, index, engine):
    label = "engines[%d]" % index
    if not isinstance(engine, dict):
        fail(errors, path, "%s is not an object" % label)
        return None
    name = engine.get("name")
    if not isinstance(name, str) or not name:
        fail(errors, path, "%s: 'name' is not a non-empty string" % label)
        name = None
    if not isinstance(engine.get("success"), bool):
        fail(errors, path, "%s: 'success' is not a boolean" % label)
    for key in ("steps", "stack_nodes", "stack_total_weight"):
        if key in engine and not is_count(engine[key]):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))
    frames = engine.get("frames")
    if frames is not None:
        if not isinstance(frames, list):
            fail(errors, path, "%s: 'frames' is not an array" % label)
        else:
            for j, frame in enumerate(frames):
                if not isinstance(frame, dict) \
                        or not isinstance(frame.get("name"), str) \
                        or not is_count(frame.get("calls")) \
                        or not is_count(frame.get("self")):
                    fail(errors, path, "%s: frames[%d] is malformed"
                         % (label, j))
    opcodes = engine.get("opcodes")
    if opcodes is not None:
        if not isinstance(opcodes, dict) \
                or not all(isinstance(k, str) and is_count(v)
                           for k, v in opcodes.items()):
            fail(errors, path,
                 "%s: 'opcodes' is not an object of counters" % label)
        # An engine with opcode counters is a VM run: the dispatch total
        # must reconcile with the reported step count.
        if isinstance(opcodes, dict) and is_count(engine.get("steps")):
            dispatched = sum(v for v in opcodes.values() if is_count(v))
            if dispatched != engine["steps"]:
                fail(errors, path,
                     "%s: opcode counters sum to %d but steps is %d"
                     % (label, dispatched, engine["steps"]))
    return name


def check_file(path):
    """Validate one report file; returns a list of error strings."""
    doc, errors = schema_common.load_document(path, SCHEMA)
    if doc is None:
        return errors
    if not isinstance(doc.get("program"), str) or not doc.get("program"):
        fail(errors, path, "'program' is not a non-empty string")
    if not isinstance(doc.get("success"), bool):
        fail(errors, path, "'success' is not a boolean")

    engines = doc.get("engines")
    engine_names = []
    if not isinstance(engines, list) or not engines:
        fail(errors, path, "'engines' is not a non-empty array")
    else:
        for i, engine in enumerate(engines):
            name = check_engine(errors, path, i, engine)
            if name is not None:
                if name in engine_names:
                    fail(errors, path, "duplicate engine name %r" % name)
                engine_names.append(name)

    sites = doc.get("sites")
    if not isinstance(sites, list):
        fail(errors, path, "'sites' is not an array")
    else:
        ids = set()
        for i, site in enumerate(sites):
            site_id = check_site(errors, path, i, site, engine_names)
            if site_id is not None:
                if site_id in ids:
                    fail(errors, path, "duplicate site id %d" % site_id)
                ids.add(site_id)

    if not isinstance(doc.get("reuse_versions"), list):
        fail(errors, path, "'reuse_versions' is not an array")
    return errors


def validate(paths):
    return schema_common.validate(paths, check_file)


def self_test():
    good = {
        "schema": SCHEMA,
        "program": "demo.nml",
        "success": True,
        "sites": [{
            "id": 7, "line": 3, "col": 12, "prim": "cons",
            "prim_value": False, "planned": "stack",
            "why": "builds the top spine of argument 1 of 'ps'",
            "provenance_ref": 42,
            "engines": {
                "tree": {
                    "allocs_heap": 0, "allocs_stack": 6, "allocs_region": 0,
                    "deaths_heap": 0, "deaths_stack": 6, "deaths_region": 0,
                    "reuses": 0, "overwritten": 0,
                    "first_touches": 4, "dead_cells": 2,
                    "lifetime": {"count": 6, "sum": 60, "min": 4, "max": 20,
                                 "mean": 10.0, "buckets": [0, 0, 0, 2, 2, 2]},
                },
                "vm": {
                    "allocs_heap": 0, "allocs_stack": 6, "allocs_region": 0,
                    "deaths_heap": 0, "deaths_stack": 6, "deaths_region": 0,
                    "reuses": 0, "overwritten": 0,
                    "first_touches": 6, "dead_cells": 0, "lifetime": None,
                },
            },
        }],
        "reuse_versions": [{"original": "ps", "primed": "ps'",
                            "param_index": 0, "dcons_sites": 2}],
        "engines": [
            {"name": "tree", "success": True, "steps": 800,
             "stack_nodes": 10, "stack_total_weight": 800,
             "frames": [{"name": "ps", "calls": 7, "self": 500}]},
            {"name": "vm", "success": True, "steps": 5,
             "stack_nodes": 4, "stack_total_weight": 5,
             "frames": [], "opcodes": {"Call": 2, "Return": 3},
             "protos": [{"name": "<entry>", "instrs": 5}]},
        ],
    }

    broken = schema_common.mutator(good)

    cases = [
        ("valid document", good, True),
        ("null provenance_ref",
         broken(lambda d: d["sites"][0].update(provenance_ref=None)), True),
        ("missing provenance_ref",
         broken(lambda d: d["sites"][0].pop("provenance_ref")), False),
        ("string provenance_ref",
         broken(lambda d: d["sites"][0].update(provenance_ref="42")), False),
        ("wrong schema tag",
         broken(lambda d: d.update(schema="v0")), False),
        ("empty engines",
         broken(lambda d: d.update(engines=[])), False),
        ("zero line number",
         broken(lambda d: d["sites"][0].update(line=0)), False),
        ("unknown planned class",
         broken(lambda d: d["sites"][0].update(planned="tls")), False),
        ("dcons site not planned reuse",
         broken(lambda d: d["sites"][0].update(prim="dcons")), False),
        ("empty why",
         broken(lambda d: d["sites"][0].update(why="")), False),
        ("missing site counter",
         broken(lambda d: d["sites"][0]["engines"]["tree"].pop("reuses")),
         False),
        ("lifetime buckets disagree with count",
         broken(lambda d: d["sites"][0]["engines"]["tree"]["lifetime"]
                .update(count=5)), False),
        ("site engine absent from top level",
         broken(lambda d: d["sites"][0]["engines"]
                .update(jit=d["sites"][0]["engines"]["vm"])), False),
        ("opcode counters disagree with steps",
         broken(lambda d: d["engines"][1].update(steps=99)), False),
        ("duplicate site ids",
         broken(lambda d: d["sites"].append(d["sites"][0])), False),
        ("negative overwritten",
         broken(lambda d: d["sites"][0]["engines"]["vm"]
                .update(overwritten=-1)), False),
        ("missing dead_cells counter",
         broken(lambda d: d["sites"][0]["engines"]["vm"]
                .pop("dead_cells")), False),
        ("missing reuse_versions",
         broken(lambda d: d.pop("reuse_versions")), False),
    ]
    return schema_common.run_self_test(
        cases, check_file, prefix="eal-profile-selftest-", filename="profile_case.json")


def main(argv):
    return schema_common.dispatch(argv, __doc__, check_file, self_test)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

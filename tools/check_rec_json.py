#!/usr/bin/env python3
"""Validate eal flight-recorder files against the eal-rec-v1 schema.

`eal run FILE --record=OUT.rec` streams the recorder's event feed, and
a failure trigger (oracle refutation, spec deopt, failed run, SIGABRT)
dumps the retained flight window via --rec-dump=OUT.rec
(docs/RECORDER.md).  Both produce one eal-rec-v1 file: a JSON header
line, the event records (NDJSON lines, or raw 32-byte binary records
closed by a sentinel), and a JSON footer line carrying the interned
name table, the final counters, and the drop count.  This checker is
the schema's executable definition; ctest runs it over real CLI output
so a drift fails the test suite, not `eal timeline`.

Invariants beyond shape: every event's kind is an index into the
header's kind table; the reserved names "<none>"/"<overflow>" hold ids
0/1; a flight dump names its trigger and its final event is the
dump.trigger mark carrying that name; a binary stream is a whole
number of records closed by the 0xFFFF sentinel.

Usage:
  check_rec_json.py FILE [FILE...]   validate existing recordings
  check_rec_json.py --self-test      exercise the validator itself

Exit status: 0 if everything validates, 1 otherwise.

Only the Python standard library is used.
"""

import json
import os
import struct
import sys
import tempfile

import schema_common
from schema_common import fail, is_count

SCHEMA = "eal-rec-v1"

FORMATS = ("ndjson", "binary")
MODES = ("stream", "flight")
EVENT_KEYS = ("t", "tid", "k", "a", "b", "c")

# struct RecEvent (src/obs/RecEvent.h): u64 time, u64 a, u64 b, u32 c,
# u16 kind, u16 tid -- 32 bytes, little-endian on every supported host.
RECORD = struct.Struct("<QQQIHH")
SENTINEL_KIND = 0xFFFF


def parse_line(errors, path, label, line):
    try:
        obj = json.loads(line)
    except ValueError as e:
        fail(errors, path, "%s is not valid JSON: %s" % (label, e))
        return None
    if not isinstance(obj, dict):
        fail(errors, path, "%s is not an object" % label)
        return None
    return obj


def check_header(errors, path, header):
    if header is None:
        return []
    if header.get("schema") != SCHEMA:
        fail(errors, path, "header: 'schema' is %r, expected %r"
             % (header.get("schema"), SCHEMA))
    if header.get("format") not in FORMATS:
        fail(errors, path, "header: 'format' is %r, expected one of %s"
             % (header.get("format"), list(FORMATS)))
    if header.get("mode") not in MODES:
        fail(errors, path, "header: 'mode' is %r, expected one of %s"
             % (header.get("mode"), list(MODES)))
    if not isinstance(header.get("command"), str) or not header.get("command"):
        fail(errors, path, "header: 'command' is not a non-empty string")
    if not isinstance(header.get("detail"), bool):
        fail(errors, path, "header: 'detail' is not a boolean")
    if not is_count(header.get("epoch_us")):
        fail(errors, path, "header: 'epoch_us' is not a non-negative integer")
    kinds = header.get("kinds")
    if not isinstance(kinds, list) or not kinds or \
            not all(isinstance(k, str) and k for k in kinds):
        fail(errors, path, "header: 'kinds' is not a non-empty array of "
             "non-empty strings")
        return []
    if kinds[0] != "none":
        fail(errors, path, "header: kinds[0] is %r, expected 'none'"
             % kinds[0])
    if len(set(kinds)) != len(kinds):
        fail(errors, path, "header: duplicate kind names")
    return kinds


def check_event(errors, path, label, event, kinds):
    for key in EVENT_KEYS:
        if not is_count(event.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))
            return
    if kinds and event["k"] >= len(kinds):
        fail(errors, path, "%s: kind %d is outside the header's %d-entry "
             "kind table" % (label, event["k"], len(kinds)))


def check_footer(errors, path, footer, mode, events, kinds):
    if footer is None:
        fail(errors, path, "missing footer line")
        return
    if footer.get("footer") is not True:
        fail(errors, path, "footer: 'footer' is not true")
    names = footer.get("names")
    if not isinstance(names, list) or \
            not all(isinstance(n, str) for n in names):
        fail(errors, path, "footer: 'names' is not an array of strings")
        names = []
    if names[:1] != ["<none>"] or (len(names) > 1 and
                                   names[1] != "<overflow>"):
        fail(errors, path, "footer: names[0..1] are %r, expected "
             "['<none>', '<overflow>']" % names[:2])
    counters = footer.get("counters")
    if not isinstance(counters, dict):
        fail(errors, path, "footer: 'counters' is not an object")
    else:
        for key, value in counters.items():
            if not is_count(value):
                fail(errors, path, "footer: counter %r is not a non-negative "
                     "integer" % key)
    if not is_count(footer.get("dropped")):
        fail(errors, path, "footer: 'dropped' is not a non-negative integer")
    trigger = footer.get("trigger")
    if not isinstance(trigger, str):
        fail(errors, path, "footer: 'trigger' is not a string")
        return
    if mode == "flight":
        # A dump exists because something fired it: the footer names the
        # trigger and the final event is the dump.trigger mark carrying
        # the same interned name.
        if not trigger:
            fail(errors, path, "footer: flight dump without a trigger")
        if not events:
            fail(errors, path, "flight dump holds no events")
            return
        last = events[-1]
        if kinds and last["k"] < len(kinds) and \
                kinds[last["k"]] != "dump.trigger":
            fail(errors, path, "flight dump's final event is %r, expected "
                 "'dump.trigger'" % kinds[last["k"]])
        elif trigger and last["a"] < len(names) and \
                names[last["a"]] != trigger:
            fail(errors, path, "dump.trigger mark names %r but the footer "
                 "trigger is %r" % (names[last["a"]], trigger))


def check_ndjson_body(errors, path, lines, kinds):
    """Event lines up to the footer; returns (events, footer)."""
    events = []
    footer = None
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        obj = parse_line(errors, path, "line %d" % (i + 2), line)
        if obj is None:
            continue
        if "footer" in obj:
            footer = obj
            for extra in lines[i + 1:]:
                if extra.strip():
                    fail(errors, path, "content after the footer line")
                    break
            break
        check_event(errors, path, "line %d" % (i + 2), obj, kinds)
        if all(is_count(obj.get(k)) for k in EVENT_KEYS):
            events.append(obj)
    return events, footer


def check_binary_body(errors, path, blob, kinds):
    """Raw records up to the sentinel; returns (events, footer)."""
    events = []
    offset = 0
    closed = False
    while offset + RECORD.size <= len(blob):
        t, a, b, c, kind, tid = RECORD.unpack_from(blob, offset)
        offset += RECORD.size
        if kind == SENTINEL_KIND:
            closed = True
            break
        event = {"t": t, "tid": tid, "k": kind, "a": a, "b": b, "c": c}
        check_event(errors, path,
                    "record %d" % len(events), event, kinds)
        events.append(event)
    if not closed:
        fail(errors, path, "binary body is not closed by the 0xFFFF "
             "sentinel record")
        return events, None
    tail = blob[offset:].decode("utf-8", "replace").splitlines()
    if not tail:
        fail(errors, path, "missing footer line")
        return events, None
    footer = parse_line(errors, path, "footer line", tail[0])
    if any(extra.strip() for extra in tail[1:]):
        fail(errors, path, "content after the footer line")
    return events, footer


def check_file(path):
    """Validate one recording; returns a list of error strings."""
    errors = []
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as e:
        return ["%s: cannot read: %s" % (path, e)]
    newline = blob.find(b"\n")
    if newline < 0:
        return ["%s: missing header line" % path]
    header = parse_line(errors, path, "header",
                        blob[:newline].decode("utf-8", "replace"))
    if header is None:
        return errors
    kinds = check_header(errors, path, header)
    body = blob[newline + 1:]
    if header.get("format") == "binary":
        events, footer = check_binary_body(errors, path, body, kinds)
    else:
        lines = body.decode("utf-8", "replace").splitlines()
        events, footer = check_ndjson_body(errors, path, lines, kinds)
    check_footer(errors, path, footer, header.get("mode"), events, kinds)
    return errors


def validate(paths):
    return schema_common.validate(paths, check_file)


KINDS = ["none", "run.begin", "run.end", "phase.begin", "phase.end",
         "gc.begin", "gc.end", "heap.grow", "arena.open", "arena.free",
         "cell.birth", "cell.death", "cell.dcons", "cell.touch",
         "cell.migrate", "spec.deopt", "oracle.refuted", "live.refuted",
         "dump.trigger"]


def make_header(**overrides):
    header = {"schema": SCHEMA, "format": "ndjson", "mode": "stream",
              "command": "run", "detail": True, "epoch_us": 12, "kinds": KINDS}
    header.update(overrides)
    return header


def make_footer(**overrides):
    footer = {"footer": True, "names": ["<none>", "<overflow>", "run",
                                        "spec-deopt"],
              "counters": {"gc_runs": 1}, "dropped": 0, "trigger": ""}
    footer.update(overrides)
    return footer


def ndjson_doc(header, events, footer):
    lines = [json.dumps(header)]
    lines += [json.dumps(e) for e in events]
    if footer is not None:
        lines.append(json.dumps(footer))
    return ("\n".join(lines) + "\n").encode()


def binary_doc(header, events, footer, sentinel=True):
    out = [json.dumps(header).encode() + b"\n"]
    for e in events:
        out.append(RECORD.pack(e["t"], e["a"], e["b"], e["c"], e["k"],
                               e["tid"]))
    if sentinel:
        out.append(RECORD.pack(0, 0, 0, 0, SENTINEL_KIND, 0))
    if footer is not None:
        out.append(json.dumps(footer).encode() + b"\n")
    return b"".join(out)


def self_test():
    run_begin = {"t": 15, "tid": 0, "k": 1, "a": 2, "b": 0, "c": 0}
    gc_begin = {"t": 20, "tid": 0, "k": 5, "a": 7, "b": 64, "c": 0}
    run_end = {"t": 31, "tid": 0, "k": 2, "a": 1, "b": 0, "c": 0}
    mark = {"t": 40, "tid": 0, "k": 18, "a": 3, "b": 0, "c": 0}
    stream_events = [run_begin, gc_begin, run_end]

    cases = [
        ("valid ndjson stream",
         ndjson_doc(make_header(), stream_events, make_footer()), True),
        ("valid flight dump",
         ndjson_doc(make_header(mode="flight"), stream_events + [mark],
                    make_footer(trigger="spec-deopt")), True),
        ("valid binary stream",
         binary_doc(make_header(format="binary"), stream_events,
                    make_footer()), True),
        ("valid empty stream",
         ndjson_doc(make_header(), [], make_footer()), True),
        ("wrong schema tag",
         ndjson_doc(make_header(schema="v0"), [], make_footer()), False),
        ("unknown format",
         ndjson_doc(make_header(format="xml"), [], make_footer()), False),
        ("unknown mode",
         ndjson_doc(make_header(mode="replay"), [], make_footer()), False),
        ("kinds[0] not 'none'",
         ndjson_doc(make_header(kinds=["run.begin"] + KINDS[1:]), [],
                    make_footer()), False),
        ("duplicate kind names",
         ndjson_doc(make_header(kinds=KINDS + ["run.begin"]), [],
                    make_footer()), False),
        ("event kind outside the table",
         ndjson_doc(make_header(), [dict(run_begin, k=len(KINDS))],
                    make_footer()), False),
        ("event with a negative payload",
         ndjson_doc(make_header(), [dict(run_begin, a=-1)], make_footer()),
         False),
        ("missing footer",
         ndjson_doc(make_header(), stream_events, None), False),
        ("content after the footer",
         ndjson_doc(make_header(), stream_events, make_footer()) +
         b"{\"t\":99}\n", False),
        ("reserved names wrong",
         ndjson_doc(make_header(), [], make_footer(names=["run"])), False),
        ("negative counter",
         ndjson_doc(make_header(), [],
                    make_footer(counters={"gc_runs": -1})), False),
        ("flight dump without a trigger",
         ndjson_doc(make_header(mode="flight"), stream_events + [mark],
                    make_footer()), False),
        ("flight dump not ending in dump.trigger",
         ndjson_doc(make_header(mode="flight"), stream_events,
                    make_footer(trigger="spec-deopt")), False),
        ("dump.trigger mark naming a different trigger",
         ndjson_doc(make_header(mode="flight"),
                    stream_events + [dict(mark, a=2)],
                    make_footer(trigger="spec-deopt")), False),
        ("binary body without the sentinel",
         binary_doc(make_header(format="binary"), stream_events,
                    make_footer(), sentinel=False), False),
        ("binary footer missing",
         binary_doc(make_header(format="binary"), stream_events, None),
         False),
    ]

    failures = 0
    with tempfile.TemporaryDirectory(prefix="eal-rec-selftest-") as tmp:
        for label, blob, expect_ok in cases:
            path = os.path.join(tmp, "case.rec")
            with open(path, "wb") as f:
                f.write(blob)
            got_ok = not check_file(path)
            status = "ok  " if got_ok == expect_ok else "FAIL"
            if got_ok != expect_ok:
                failures += 1
            print("%s self-test: %s (valid=%s, expected %s)"
                  % (status, label, got_ok, expect_ok))
        path = os.path.join(tmp, "bad.rec")
        with open(path, "wb") as f:
            f.write(b"{ not json\n")
        if check_file(path):
            print("ok   self-test: malformed header rejected")
        else:
            print("FAIL self-test: malformed header accepted")
            failures += 1
    return 0 if failures == 0 else 1


def main(argv):
    return schema_common.dispatch(argv, __doc__, check_file, self_test)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate eal --spec-json output against the eal-spec-v1 schema.

`eal spec FILE --spec-json=OUT.json` (and any executing command given
--spec-json) writes the speculation plan -- every profile-guided bet
with its guard position, profile evidence, and guarded directives --
plus the runtime outcome (held, or deopted with cells migrated) as one
JSON document (docs/SPECULATION.md).  This checker is the schema's
executable definition; ctest runs it over real CLI output so a drift
fails the test suite, not a downstream consumer.

Invariants beyond shape: speculation indices are the array positions;
a speculation's cold_entries can never exceed its hot_entries (the
planner prunes the cold side); every directive carries at least one
site; the runtime block, when present, is internally consistent
(deopted implies a cause and exactly one deopt, injected_deopts never
exceeds deopts, and cells can only migrate on a deopt).

Usage:
  check_spec_json.py FILE [FILE...]   validate existing report files
  check_spec_json.py --self-test      exercise the validator itself

Exit status: 0 if everything validates, 1 otherwise.

Only the Python standard library is used.
"""

import sys

import schema_common
from schema_common import fail, is_count

SCHEMA = "eal-spec-v1"

SITE_CLASSES = ("stack", "region")
RUNTIME_COUNTERS = ("arenas_opened", "guard_hits", "deopts",
                    "injected_deopts", "cells_migrated")
CAUSES = ("guard", "injected")


def check_loc(errors, path, label, obj, id_key):
    if not isinstance(obj, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    if not is_count(obj.get(id_key)):
        fail(errors, path, "%s: '%s' is not a non-negative integer"
             % (label, id_key))
    for key in ("line", "col"):
        if not is_count(obj.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))


def check_directive(errors, path, label, directive):
    if not isinstance(directive, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    if not isinstance(directive.get("call"), str) or not directive.get("call"):
        fail(errors, path, "%s: 'call' is not a non-empty string" % label)
    for key in ("call_id", "arg", "protected_spines"):
        if not is_count(directive.get(key)):
            fail(errors, path, "%s: '%s' is not a non-negative integer"
                 % (label, key))
    sites = directive.get("sites")
    if not isinstance(sites, list):
        fail(errors, path, "%s: 'sites' is not an array" % label)
        return
    # An empty directive protects nothing; the planner never emits one.
    if not sites:
        fail(errors, path, "%s: 'sites' is empty" % label)
    seen = set()
    for j, site in enumerate(sites):
        slabel = "%s.sites[%d]" % (label, j)
        if not isinstance(site, dict):
            fail(errors, path, "%s is not an object" % slabel)
            continue
        site_id = site.get("id")
        if not is_count(site_id):
            fail(errors, path, "%s: 'id' is not a non-negative integer"
                 % slabel)
        elif site_id in seen:
            fail(errors, path, "%s: duplicate site id %d" % (slabel, site_id))
        else:
            seen.add(site_id)
        if site.get("class") not in SITE_CLASSES:
            fail(errors, path, "%s: 'class' is %r, expected one of %s"
                 % (slabel, site.get("class"), list(SITE_CLASSES)))


def check_speculation(errors, path, index, spec):
    label = "speculations[%d]" % index
    if not isinstance(spec, dict):
        fail(errors, path, "%s is not an object" % label)
        return
    if spec.get("index") != index:
        fail(errors, path, "%s: 'index' is %r, expected the array index %d"
             % (label, spec.get("index"), index))
    check_loc(errors, path, "%s.if" % label, spec.get("if"), "id")
    check_loc(errors, path, "%s.guard" % label, spec.get("guard"),
              "branch_id")
    profile = spec.get("profile")
    if not isinstance(profile, dict):
        fail(errors, path, "%s: 'profile' is not an object" % label)
        profile = {}
    hot = profile.get("hot_entries")
    cold = profile.get("cold_entries")
    for key, value in (("hot_entries", hot), ("cold_entries", cold)):
        if not is_count(value):
            fail(errors, path, "%s.profile: '%s' is not a non-negative "
                 "integer" % (label, key))
    # The planner prunes the *cold* side: the kept branch must have run
    # strictly more often than the pruned one.
    if is_count(hot) and is_count(cold) and cold >= hot:
        fail(errors, path, "%s.profile: cold_entries (%d) is not below "
             "hot_entries (%d)" % (label, cold, hot))
    directives = spec.get("directives")
    if not isinstance(directives, list):
        fail(errors, path, "%s: 'directives' is not an array" % label)
        return
    # A speculation with nothing to protect would be a free deopt risk;
    # the planner drops it.
    if not directives:
        fail(errors, path, "%s: 'directives' is empty" % label)
    for j, directive in enumerate(directives):
        check_directive(errors, path, "%s.directives[%d]" % (label, j),
                        directive)


def check_runtime(errors, path, runtime):
    if runtime is None:
        return
    if not isinstance(runtime, dict):
        fail(errors, path, "'runtime' is not null or an object")
        return
    deopted = runtime.get("deopted")
    if not isinstance(deopted, bool):
        fail(errors, path, "runtime: 'deopted' is not a boolean")
        deopted = None
    cause = runtime.get("cause")
    if cause is not None and cause not in CAUSES:
        fail(errors, path, "runtime: 'cause' is %r, expected null or one of "
             "%s" % (cause, list(CAUSES)))
    for key in RUNTIME_COUNTERS:
        if not is_count(runtime.get(key)):
            fail(errors, path, "runtime: '%s' is not a non-negative integer"
                 % key)
    deopts = runtime.get("deopts")
    injected = runtime.get("injected_deopts")
    migrated = runtime.get("cells_migrated")
    if deopted is True:
        if cause is None:
            fail(errors, path, "runtime: deopted without a cause")
        # The protocol is global: the first failure disarms everything,
        # so a run deopts exactly once.
        if is_count(deopts) and deopts != 1:
            fail(errors, path, "runtime: deopted with 'deopts' = %r, "
                 "expected 1 (the protocol is global)" % deopts)
    if deopted is False:
        if cause is not None:
            fail(errors, path, "runtime: a cause without a deopt")
        if is_count(deopts) and deopts != 0:
            fail(errors, path, "runtime: 'deopts' is %r on a held run"
                 % deopts)
        if is_count(migrated) and migrated != 0:
            fail(errors, path, "runtime: cells migrated without a deopt")
    if is_count(deopts) and is_count(injected) and injected > deopts:
        fail(errors, path, "runtime: 'injected_deopts' (%d) exceeds "
             "'deopts' (%d)" % (injected, deopts))
    if cause == "injected" and is_count(injected) and injected == 0:
        fail(errors, path, "runtime: cause 'injected' with zero "
             "injected_deopts")


def check_file(path):
    """Validate one report file; returns a list of error strings."""
    doc, errors = schema_common.load_document(path, SCHEMA)
    if doc is None:
        return errors
    if not isinstance(doc.get("program"), str) or not doc.get("program"):
        fail(errors, path, "'program' is not a non-empty string")
    speculations = doc.get("speculations")
    if not isinstance(speculations, list):
        fail(errors, path, "'speculations' is not an array")
        speculations = []
    for i, spec in enumerate(speculations):
        check_speculation(errors, path, i, spec)
    if "runtime" not in doc:
        fail(errors, path, "'runtime' is missing (use null for a plan that "
             "was not executed)")
    else:
        check_runtime(errors, path, doc.get("runtime"))
    return errors


def validate(paths):
    return schema_common.validate(paths, check_file)


def self_test():
    good = {
        "schema": SCHEMA,
        "program": "examples/nml/spec_cold.nml",
        "speculations": [
            {"index": 0,
             "if": {"id": 103, "line": 19, "col": 14},
             "guard": {"branch_id": 101, "line": 19, "col": 24},
             "profile": {"hot_entries": 1, "cold_entries": 0},
             "directives": [
                 {"call": "keep", "call_id": 112, "arg": 1,
                  "protected_spines": 1,
                  "sites": [{"id": 68, "class": "region"}]}]},
        ],
        "runtime": {"deopted": False, "cause": None, "arenas_opened": 1,
                    "guard_hits": 0, "deopts": 0, "injected_deopts": 0,
                    "cells_migrated": 0},
    }

    broken = schema_common.mutator(good)

    cases = [
        ("valid held run", good, True),
        ("valid injected deopt",
         broken(lambda d: d.update(runtime={
             "deopted": True, "cause": "injected", "arenas_opened": 1,
             "guard_hits": 0, "deopts": 1, "injected_deopts": 1,
             "cells_migrated": 48})), True),
        ("valid natural guard failure",
         broken(lambda d: d.update(runtime={
             "deopted": True, "cause": "guard", "arenas_opened": 1,
             "guard_hits": 1, "deopts": 1, "injected_deopts": 0,
             "cells_migrated": 7})), True),
        ("valid unexecuted plan",
         broken(lambda d: d.update(runtime=None)), True),
        ("valid empty plan",
         broken(lambda d: d.update(speculations=[])), True),
        ("wrong schema tag",
         broken(lambda d: d.update(schema="v0")), False),
        ("empty program name",
         broken(lambda d: d.update(program="")), False),
        ("missing runtime key",
         broken(lambda d: d.pop("runtime")), False),
        ("speculation index not the array position",
         broken(lambda d: d["speculations"][0].update(index=3)), False),
        ("cold entries not below hot",
         broken(lambda d: d["speculations"][0]["profile"].update(
             cold_entries=1)), False),
        ("speculation without directives",
         broken(lambda d: d["speculations"][0].update(directives=[])), False),
        ("directive without sites",
         broken(lambda d: d["speculations"][0]["directives"][0].update(
             sites=[])), False),
        ("duplicate directive site ids",
         broken(lambda d: d["speculations"][0]["directives"][0].update(
             sites=[{"id": 68, "class": "region"},
                    {"id": 68, "class": "stack"}])), False),
        ("unknown site class",
         broken(lambda d: d["speculations"][0]["directives"][0]["sites"][0]
                .update(**{"class": "static"})), False),
        ("deopted without a cause",
         broken(lambda d: d["runtime"].update(deopted=True, deopts=1)),
         False),
        ("held run with a cause",
         broken(lambda d: d["runtime"].update(cause="guard")), False),
        ("held run with migrated cells",
         broken(lambda d: d["runtime"].update(cells_migrated=5)), False),
        ("two deopts under the global protocol",
         broken(lambda d: d["runtime"].update(
             deopted=True, cause="guard", deopts=2, guard_hits=2)), False),
        ("injected deopts exceed deopts",
         broken(lambda d: d["runtime"].update(injected_deopts=1)), False),
        ("injected cause with zero injected deopts",
         broken(lambda d: d["runtime"].update(
             deopted=True, cause="injected", deopts=1,
             cells_migrated=3)), False),
        ("negative counter",
         broken(lambda d: d["runtime"].update(guard_hits=-1)), False),
    ]
    return schema_common.run_self_test(
        cases, check_file, prefix="eal-spec-selftest-", filename="spec.json")


def main(argv):
    return schema_common.dispatch(argv, __doc__, check_file, self_test)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

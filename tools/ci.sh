#!/usr/bin/env bash
# CI driver: build + tier-1 test the three configurations that keep the
# codebase honest (docs/CHECKING.md):
#
#   release   Release, -Werror         the configuration users build
#   asan      AddressSanitizer        heap bugs the GC could be hiding
#   ubsan     UndefinedBehaviorSanitizer, -fno-sanitize-recover=all
#
# Each configuration builds into build-ci-<name>/ at the repo root and
# runs the tier-1 ctest suite (tier2 benches/sweeps are excluded: they
# measure, they don't gate). Usage:
#
#   tools/ci.sh            all three configurations
#   tools/ci.sh asan       just one
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

configure_flags() {
  case "$1" in
  release) echo "-DCMAKE_BUILD_TYPE=Release -DEAL_WERROR=ON" ;;
  asan) echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DEAL_WERROR=ON -DEAL_ASAN=ON" ;;
  ubsan) echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DEAL_WERROR=ON -DEAL_UBSAN=ON" ;;
  *)
    echo "ci.sh: unknown configuration '$1' (expected release|asan|ubsan)" >&2
    exit 2
    ;;
  esac
}

run_config() {
  local name="$1"
  local dir="$REPO/build-ci-$name"
  echo "=== [$name] configure"
  # shellcheck disable=SC2046
  cmake -B "$dir" -S "$REPO" $(configure_flags "$name")
  echo "=== [$name] build"
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] tier-1 ctest"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" -LE tier2)
  echo "=== [$name] OK"
}

if [ "$#" -gt 0 ]; then
  for config in "$@"; do
    run_config "$config"
  done
else
  for config in release asan ubsan; do
    run_config "$config"
  done
fi
echo "=== all configurations passed"

#!/usr/bin/env bash
# CI driver: build + tier-1 test the four configurations that keep the
# codebase honest (docs/CHECKING.md):
#
#   release   Release, -Werror         the configuration users build
#   asan      AddressSanitizer        heap bugs the GC could be hiding
#   ubsan     UndefinedBehaviorSanitizer, -fno-sanitize-recover=all
#   portable  Release with -DEAL_COMPUTED_GOTO=OFF (the VM's switch
#             dispatch loop, which non-GNU compilers get) and
#             -DEAL_OBS_RECORDER=OFF: every rec::emit site must compile
#             away cleanly when the flight recorder is configured out
#   tsan      ThreadSanitizer: the obs sinks and enable flags are read
#             from the big-stack execution thread (prep for a parallel
#             runtime), so toggling them must stay race-free; the
#             recorder's ring/drain/dump protocol is stressed by
#             tests/obs/RecorderStressTest.cpp in the tier-1 suite
#
# Each configuration builds into build-ci-<name>/ at the repo root and
# runs the tier-1 ctest suite (tier2 benches/sweeps are excluded: they
# measure, they don't gate). The release configuration then runs a fuzz
# smoke (the property suite's Fuzz instantiation widened to fresh seeds
# via EAL_FUZZ_SEEDS, see tests/property/DifferentialTest.cpp) and the
# perf-regression gate: the JSON-writing benches' sweeps run into
# build-ci-release/bench-archive/ and tools/bench_diff.py compares each
# BENCH_*.json against the checked-in baseline under bench/baselines/,
# failing on execute-time regressions past EAL_BENCH_MAX_REGRESS
# (default +10%; see docs/PROFILING.md). The same gate holds the flight
# recorder to its always-on budget: bench_engines self-measures execute
# time with the lite tier on vs off and bench_diff.py --overhead fails
# past EAL_BENCH_MAX_OVERHEAD (default +2%; docs/RECORDER.md). Usage:
#
#   tools/ci.sh            all four configurations
#   tools/ci.sh asan       just one
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
FUZZ_SEEDS="${EAL_FUZZ_SEEDS:-48}"
BENCH_MAX_REGRESS="${EAL_BENCH_MAX_REGRESS:-0.10}"
BENCH_MAX_OVERHEAD="${EAL_BENCH_MAX_OVERHEAD:-0.02}"
# Benches whose BENCH_*.json is baselined under bench/baselines/.
BENCH_GATE="bench_engines bench_a31_stack_alloc bench_live_deaddata bench_spec"

configure_flags() {
  case "$1" in
  release) echo "-DCMAKE_BUILD_TYPE=Release -DEAL_WERROR=ON" ;;
  asan) echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DEAL_WERROR=ON -DEAL_ASAN=ON" ;;
  ubsan) echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DEAL_WERROR=ON -DEAL_UBSAN=ON" ;;
  portable) echo "-DCMAKE_BUILD_TYPE=Release -DEAL_WERROR=ON -DEAL_COMPUTED_GOTO=OFF -DEAL_OBS_RECORDER=OFF" ;;
  tsan) echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DEAL_WERROR=ON -DEAL_TSAN=ON" ;;
  *)
    echo "ci.sh: unknown configuration '$1' (expected release|asan|ubsan|portable|tsan)" >&2
    exit 2
    ;;
  esac
}

run_config() {
  local name="$1"
  local dir="$REPO/build-ci-$name"
  echo "=== [$name] configure"
  # shellcheck disable=SC2046
  cmake -B "$dir" -S "$REPO" $(configure_flags "$name")
  echo "=== [$name] build"
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] tier-1 ctest"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" -LE tier2)
  if [ "$name" = asan ]; then
    explain_smoke "$dir"
    live_smoke "$dir"
    spec_smoke "$dir"
    record_smoke "$dir"
  fi
  if [ "$name" = release ]; then
    echo "=== [$name] fuzz smoke ($FUZZ_SEEDS fresh seeds)"
    (cd "$dir" && EAL_FUZZ_SEEDS="$FUZZ_SEEDS" \
        ./tests/property_tests --gtest_filter='Fuzz/*')
    bench_gate "$dir"
  fi
  echo "=== [$name] OK"
}

# Why-provenance smoke: run `eal explain` over every shipped example
# under ASan -- the blame-chain builder walks the whole final program and
# dereferences fact ids recorded by three different analyses, so this is
# where a stale reference or classifier/linter drift surfaces. Each run
# also round-trips --explain-json through the schema checker
# (docs/EXPLAIN.md).
explain_smoke() {
  local dir="$1"
  echo "=== [asan] eal explain over examples/nml (+ schema check)"
  local example flags json
  for example in "$REPO"/examples/nml/*.nml; do
    flags=""
    case "$(basename "$example")" in
    stats.nml) flags="--stdlib" ;;
    esac
    json="$dir/explain-$(basename "$example" .nml).json"
    # shellcheck disable=SC2086
    "$dir/tools/eal" explain "$example" $flags --explain-json="$json" \
        >/dev/null
    python3 "$REPO/tools/check_explain_json.py" "$json"
  done
}

# Heap-liveness smoke: `eal live` over every shipped example, each run
# round-tripping --live-json through the eal-live-v1 schema checker
# (docs/LIVENESS.md). Dead-data lints are warnings, so a finding does
# not fail the smoke -- a schema drift or an analysis crash does.
live_smoke() {
  local dir="$1"
  echo "=== [asan] eal live over examples/nml (+ schema check)"
  local example flags json
  for example in "$REPO"/examples/nml/*.nml; do
    flags=""
    case "$(basename "$example")" in
    stats.nml) flags="--stdlib" ;;
    esac
    json="$dir/live-$(basename "$example" .nml).json"
    # shellcheck disable=SC2086
    "$dir/tools/eal" live "$example" $flags --live-json="$json" \
        >/dev/null
    python3 "$REPO/tools/check_live_json.py" "$json"
  done
}

# Speculative-tier smoke: run every shipped example under ASan with
# speculation on AND a forced deopt, arena frees validated — the deopt
# path migrates live cells mid-run, so this is where a dangling arena
# link or a double free would surface. Each `eal spec` run also
# round-trips --spec-json through the eal-spec-v1 schema checker
# (docs/SPECULATION.md). Examples that plan no speculation still
# exercise the planner's pre-run and export an empty plan.
spec_smoke() {
  local dir="$1"
  echo "=== [asan] eal spec + forced deopt over examples/nml (+ schema check)"
  local example flags json
  for example in "$REPO"/examples/nml/*.nml; do
    flags=""
    case "$(basename "$example")" in
    stats.nml) flags="--stdlib" ;;
    esac
    json="$dir/spec-$(basename "$example" .nml).json"
    # shellcheck disable=SC2086
    "$dir/tools/eal" run "$example" $flags --spec --spec-inject-deopt=all \
        --validate >/dev/null
    # shellcheck disable=SC2086
    "$dir/tools/eal" spec "$example" $flags --spec-json="$json" \
        >/dev/null
    python3 "$REPO/tools/check_spec_json.py" "$json"
  done
}

# Flight-recorder smoke: stream every shipped example into an
# eal-rec-v1 recording under ASan (the drain thread tails per-thread
# rings while the big-stack execution thread emits -- exactly the
# concurrency ASan should watch), round-trip each file through the
# schema checker, and replay it with `eal timeline`, which exits 1 if
# the replayed counters fail to reconcile with the run's own stats
# (docs/RECORDER.md). Then force the crash path twice: an injected
# spec deopt and a parse error, each with --rec-dump armed, must leave
# a loadable flight recording whose trigger names the failure.
record_smoke() {
  local dir="$1"
  echo "=== [asan] eal run --record over examples/nml (+ schema + timeline)"
  local example flags rec
  for example in "$REPO"/examples/nml/*.nml; do
    flags=""
    case "$(basename "$example")" in
    stats.nml) flags="--stdlib" ;;
    esac
    rec="$dir/record-$(basename "$example" .nml).rec"
    # shellcheck disable=SC2086
    "$dir/tools/eal" run "$example" $flags --record="$rec" >/dev/null
    python3 "$REPO/tools/check_rec_json.py" "$rec"
    "$dir/tools/eal" timeline "$rec" >/dev/null
  done
  echo "=== [asan] forced deopt dump (--spec-inject-deopt + --rec-dump)"
  rec="$dir/record-deopt-dump.rec"
  rm -f "$rec"
  "$dir/tools/eal" run "$REPO/examples/nml/spec_cold.nml" --spec \
      --spec-inject-deopt=all --rec-dump="$rec" >/dev/null
  python3 "$REPO/tools/check_rec_json.py" "$rec"
  "$dir/tools/eal" timeline "$rec" | grep -q "trigger=spec-deopt"
  echo "=== [asan] forced failure dump (--rec-dump)"
  rec="$dir/record-failure-dump.rec"
  rm -f "$rec"
  printf 'let x = in\n' >"$dir/record-bad-input.nml"
  if "$dir/tools/eal" run "$dir/record-bad-input.nml" --rec-dump="$rec" \
      >/dev/null 2>&1; then
    echo "ci.sh: parse-error run unexpectedly succeeded" >&2
    exit 1
  fi
  if [ ! -s "$rec" ]; then
    echo "ci.sh: failed run left no flight dump at $rec" >&2
    exit 1
  fi
  "$dir/tools/eal" timeline "$rec" | grep -q "trigger=run-failed"
}

# Perf-regression gate: run each baselined bench's sweep (benchmark
# timing loops filtered out) into bench-archive/, then diff the fresh
# BENCH_*.json against bench/baselines/. The archive directory is kept
# so CI can upload it as the run's perf artifact.
bench_gate() {
  local dir="$1"
  local archive="$dir/bench-archive"
  echo "=== [release] bench archive + regression gate (threshold +$(
      awk "BEGIN { printf \"%g\", $BENCH_MAX_REGRESS * 100 }")%)"
  rm -rf "$archive"
  mkdir -p "$archive"
  for bench in $BENCH_GATE; do
    (cd "$archive" && "$dir/bench/$bench" --benchmark_filter=__none__)
  done
  for bench in $BENCH_GATE; do
    local json="BENCH_${bench#bench_}.json"
    if [ ! -f "$REPO/bench/baselines/$json" ]; then
      echo "ci.sh: missing baseline bench/baselines/$json" >&2
      exit 1
    fi
    python3 "$REPO/tools/bench_diff.py" \
        "$REPO/bench/baselines/$json" "$archive/$json" \
        --max-time-regress "$BENCH_MAX_REGRESS"
  done
  # Recorder overhead budget: bench_engines self-measures execute time
  # with the lite event tier on vs off (obs_overhead/* records); the
  # always-on recorder must stay within EAL_BENCH_MAX_OVERHEAD.
  echo "=== [release] recorder overhead gate (budget +$(
      awk "BEGIN { printf \"%g\", $BENCH_MAX_OVERHEAD * 100 }")%)"
  python3 "$REPO/tools/bench_diff.py" \
      --overhead "$archive/BENCH_engines.json" \
      --max-overhead "$BENCH_MAX_OVERHEAD"
}

if [ "$#" -gt 0 ]; then
  for config in "$@"; do
    run_config "$config"
  done
else
  for config in release asan ubsan portable tsan; do
    run_config "$config"
  done
fi
echo "=== all configurations passed"

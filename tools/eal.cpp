//===- eal.cpp - command-line driver ----------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Usage:
//   eal analyze  <file>   escape (G) and sharing (Theorem 2) reports
//   eal optimize <file>   DCONS-transformed program and allocation plan
//   eal run      <file>   execute, printing the value and storage counters
//   eal report   <file>   all of the above
//
// Common flags:
//   --mono            monomorphic typing (the paper's base language, §3.1)
//   --stdlib          splice the standard prelude into the program
//   --vm              execute on the bytecode VM instead of the interpreter
//   --no-reuse / --no-stack / --no-region
//                     disable individual optimizations
//   --heap N          initial heap capacity in cells (default 16384)
//   --validate        verify every arena free (debugging plans)
//   -                 read the program from stdin
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/AstPrinter.h"
#include "sharing/SharingAnalysis.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace eal;

namespace {

int usage() {
  std::cerr
      << "usage: eal <analyze|optimize|run|report> <file|-> [options]\n"
         "options: --mono --stdlib --vm --whole-object --no-reuse --no-stack "
         "--no-region "
         "--heap N --validate\n";
  return 2;
}

bool readSource(const std::string &Path, std::string &Out) {
  if (Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Out = SS.str();
    return true;
  }
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "eal: error: cannot open '" << Path << "'\n";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

void printAnalysis(const PipelineResult &R) {
  std::cout << "== escape analysis (G, section 4.1) ==\n"
            << renderEscapeReport(*R.Ast, R.Optimized->BaseEscape)
            << "\n== sharing (Theorem 2, clause 2) ==\n"
            << renderSharingReport(*R.Ast, *R.Typed,
                                   R.Optimized->BaseEscape);
}

void printOptimization(const PipelineResult &R) {
  std::cout << "== transformed program ==\n"
            << printExpr(*R.Ast, R.Optimized->Root) << "\n\n"
            << "== in-place reuse record ==\n"
            << renderReuseReport(*R.Ast, R.Optimized->Reuse)
            << "\n== allocation plan ==\n"
            << renderAllocationPlan(*R.Ast, R.Optimized->Plan);
}

void printRun(const PipelineResult &R) {
  std::cout << "value: " << R.RenderedValue << "\n\n"
            << "== storage counters ==\n"
            << R.Stats.str();
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  std::string Command = argv[1];
  std::string Path = argv[2];
  if (Command != "analyze" && Command != "optimize" && Command != "run" &&
      Command != "report")
    return usage();

  PipelineOptions Options;
  Options.RunProgram = Command == "run" || Command == "report";
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--mono")
      Options.Mode = TypeInferenceMode::Monomorphic;
    else if (Arg == "--stdlib")
      Options.IncludeStdlib = true;
    else if (Arg == "--vm")
      Options.Engine = ExecutionEngine::Bytecode;
    else if (Arg == "--whole-object")
      Options.Optimize.Analysis = EscapeAnalysisMode::WholeObject;
    else if (Arg == "--no-reuse")
      Options.Optimize.EnableReuse = false;
    else if (Arg == "--no-stack")
      Options.Optimize.EnableStack = false;
    else if (Arg == "--no-region")
      Options.Optimize.EnableRegion = false;
    else if (Arg == "--validate")
      Options.Run.ValidateArenaFrees = true;
    else if (Arg == "--heap" && I + 1 < argc)
      Options.Run.HeapCapacity = std::strtoul(argv[++I], nullptr, 10);
    else
      return usage();
  }

  std::string Source;
  if (!readSource(Path, Source))
    return 1;

  PipelineResult R = runPipeline(Source, Options);
  if (!R.Success) {
    std::cerr << R.diagnostics();
    return 1;
  }

  if (Command == "analyze" || Command == "report")
    printAnalysis(R);
  if (Command == "optimize" || Command == "report") {
    if (Command == "report")
      std::cout << '\n';
    printOptimization(R);
  }
  if (Command == "run" || Command == "report") {
    if (Command == "report")
      std::cout << '\n';
    printRun(R);
  }
  return 0;
}

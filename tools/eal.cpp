//===- eal.cpp - command-line driver ----------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Usage:
//   eal analyze  <file>   escape (G) and sharing (Theorem 2) reports
//   eal optimize <file>   DCONS-transformed program and allocation plan
//   eal run      <file>   execute, printing the value and storage counters
//   eal disasm   <file>   compile to bytecode and print the disassembly
//                         (flat frames, superinstructions, tail calls)
//   eal report   <file>   all of the above
//   eal check    <file>   lint + per-allocation optimization explanations
//                         (docs/CHECKING.md); add --oracle to also execute
//                         under the dynamic escape oracle
//   eal profile  <file>   execute on BOTH engines under the allocation-site
//                         & hot-path profiler (docs/PROFILING.md): every
//                         cons/pair/dcons site with its planned storage
//                         class, why, and what each engine observed there
//   eal explain  <file>   why-provenance blame chains (docs/EXPLAIN.md):
//                         for every allocation site, the derivation from
//                         the site to the program point deciding its
//                         storage (the escaping return, the directive, ...)
//   eal live     <file>   heap-liveness analysis (docs/LIVENESS.md):
//                         per-function demand summaries, per-site demands,
//                         and the EAL-D dead-data findings; add
//                         --live-oracle to also execute under the dynamic
//                         liveness oracle
//   eal spec     <file>   speculative tier (docs/SPECULATION.md): profile
//                         the program, plan guarded arena directives for
//                         profile-cold branches, execute the merged plan,
//                         and report each speculation with its outcome
//                         (held, or deopted with cells migrated)
//   eal timeline <rec>    replay an eal-rec-v1 recording (--record= /
//                         --rec-dump= output, docs/RECORDER.md) into heap
//                         occupancy curves by storage class, cell lifetime
//                         ribbons, and phase/GC bands; --json=FILE exports
//                         the reconstruction (schema eal-timeline-v1)
//
// Common flags:
//   --mono            monomorphic typing (the paper's base language, §3.1)
//   --stdlib          splice the standard prelude into the program
//   --vm              execute on the bytecode VM instead of the interpreter
//   --no-reuse / --no-stack / --no-region
//                     disable individual optimizations
//   --heap N          initial heap capacity in cells (default 16384)
//   --validate        verify every arena free (debugging plans)
//   -                 read the program from stdin
//
// Observability flags (docs/OBSERVABILITY.md):
//   --trace=FILE      record phase spans, fixpoint iterates, GC and arena
//                     events; write a Chrome trace_event JSON file
//                     loadable by chrome://tracing / Perfetto
//   --stats-json=FILE write runtime counters + metrics registry as JSON
//   --time-phases     print per-phase wall times after the run
//
// Recorder flags (docs/RECORDER.md):
//   --record=FILE     stream the flight-recorder event feed (run/phase/GC/
//                     arena boundaries plus the per-cell detail tier) into
//                     an eal-rec-v1 NDJSON file; `eal timeline` replays it
//   --record-binary=FILE
//                     same, as raw 32-byte binary records (compact)
//   --rec-dump=FILE   arm the always-on flight recorder to dump its
//                     retained event window here on the first failure
//                     (oracle refutation, spec deopt, failed run, SIGABRT)
//
// Checking flags (docs/CHECKING.md):
//   --check           run the lints alongside any command
//   --oracle          execute under the dynamic escape oracle: every
//                     static "does not escape" claim is verified against
//                     the concrete heap; a refuted claim aborts the run
//   --check-json=FILE write findings + oracle counters as JSON
//                     (schema eal-check-v1, tools/check_findings_json.py)
//
// Profiling flags (docs/PROFILING.md, `eal profile` only):
//   --profile-json=FILE write the joined static+dynamic profile as JSON
//                     (schema eal-profile-v1, tools/check_profile_json.py)
//   --folded=FILE     write collapsed stacks for both engines (one
//                     "tree;f;g N" / "vm;f;g N" line per stack), ready
//                     for flamegraph.pl / speedscope
//
// Liveness flags (docs/LIVENESS.md):
//   --live            run the liveness analysis alongside any command
//   --live-oracle     execute under the dynamic liveness oracle: every
//                     EAL-D001 dead-site claim is checked against the
//                     concrete run's field reads; violations exit 1
//   --live-gc         let the GC prune never-demanded structure (the one
//                     liveness consumer that changes runtime behaviour)
//   --live-json=FILE  write the liveness report as JSON (schema
//                     eal-live-v1, tools/check_live_json.py); any command
//
// Explain flags (docs/EXPLAIN.md):
//   --at=[FILE:]L:C   print only the chains of the allocation site at
//                     line L, column C (`eal explain` only); with no
//                     exact column match, every site on line L
//   --explain-json=FILE write the chains + the whole provenance graph as
//                     JSON (schema eal-explain-v1,
//                     tools/check_explain_json.py); any command
//   --dot=FILE        write the provenance graph as Graphviz DOT, blame
//                     chains highlighted; any command
//
// Speculation flags (docs/SPECULATION.md):
//   --spec            enable the speculative tier alongside any executing
//                     command (run/report/check --oracle/...)
//   --spec-inject-deopt=SITE[:N] | all
//                     deterministically inject a guard failure at the Nth
//                     close (default 1st) of a live speculative arena
//                     covering allocation site SITE ("all": the first
//                     close of any speculative arena); exercises the
//                     deopt/migration path, which an unperturbed
//                     deterministic program can never reach
//   --spec-cold-max=N treat branches with at most N profiled entries as
//                     cold (default 0)
//   --spec-hot-min=N  require a speculated site to have at least N
//                     profiled heap allocations (default 8)
//   --spec-json=FILE  write the speculation plan + runtime outcome as
//                     JSON (schema eal-spec-v1, tools/check_spec_json.py)
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "escape/EscapeAnalyzer.h"
#include "obs/Timeline.h"
#include "lang/AstPrinter.h"
#include "prof/ProfileReport.h"
#include "prof/Profiler.h"
#include "sharing/SharingAnalysis.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

using namespace eal;

namespace {

int usage() {
  std::cerr
      << "usage: eal <analyze|optimize|run|disasm|report|check|profile"
         "|explain|live|spec> <file|-> [options]\n"
         "       eal timeline <recording> [--json=FILE]\n"
         "options: --mono --stdlib --vm --whole-object --no-reuse --no-stack "
         "--no-region "
         "--heap N --validate\n"
         "         --trace=FILE --stats-json=FILE --time-phases\n"
         "         --record=FILE --record-binary=FILE --rec-dump=FILE\n"
         "         --check --oracle --check-json=FILE\n"
         "         --live --live-oracle --live-gc --live-json=FILE\n"
         "         --profile-json=FILE --folded=FILE   (profile only)\n"
         "         --at=[FILE:]LINE:COL (explain only) --explain-json=FILE "
         "--dot=FILE\n"
         "         --spec --spec-inject-deopt=SITE[:N]|all "
         "--spec-cold-max=N --spec-hot-min=N --spec-json=FILE\n";
  return 2;
}

bool readSource(const std::string &Path, std::string &Out) {
  if (Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Out = SS.str();
    return true;
  }
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "eal: error: cannot open '" << Path << "'\n";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

void printAnalysis(const PipelineResult &R) {
  std::cout << "== escape analysis (G, section 4.1) ==\n"
            << renderEscapeReport(*R.Ast, R.Optimized->BaseEscape)
            << "\n== sharing (Theorem 2, clause 2) ==\n"
            << renderSharingReport(*R.Ast, *R.Typed,
                                   R.Optimized->BaseEscape);
}

void printOptimization(const PipelineResult &R) {
  std::cout << "== transformed program ==\n"
            << printExpr(*R.Ast, R.Optimized->Root) << "\n\n"
            << "== in-place reuse record ==\n"
            << renderReuseReport(*R.Ast, R.Optimized->Reuse)
            << "\n== allocation plan ==\n"
            << renderAllocationPlan(*R.Ast, R.Optimized->Plan);
}

void printRun(const PipelineResult &R) {
  std::cout << "value: " << R.RenderedValue << "\n\n"
            << "== storage counters ==\n"
            << R.Stats.str();
}

void printPhaseTimes(const PipelineResult &R) {
  std::cout << "== phase times ==\n";
  for (const auto &[Name, Micros] : R.PhaseMicros)
    std::cout << std::left << std::setw(16) << Name << "= " << std::right
              << std::setw(10) << Micros << " us\n";
}

/// Reports PipelineResult::ObsExportErrors (trace/stats-json export
/// failures) on stderr; returns false when there were any.
bool reportObsErrors(const PipelineResult &R) {
  for (const std::string &E : R.ObsExportErrors)
    std::cerr << "eal: error: " << E << "\n";
  return R.ObsExportErrors.empty();
}

bool writeTextFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  if (Out)
    Out << Text;
  if (!Out)
    std::cerr << "eal: error: cannot write '" << Path << "'\n";
  return static_cast<bool>(Out);
}

/// Parses "--spec-inject-deopt" specs: "all" or "SITE[:N]" (N 1-based,
/// default 1).
bool parseInjectSpec(const std::string &Spec, spec::SpecInjection &Inject) {
  if (Spec == "all") {
    Inject.All = true;
    return true;
  }
  char *End = nullptr;
  Inject.Site = static_cast<uint32_t>(std::strtoul(Spec.c_str(), &End, 10));
  if (End == Spec.c_str())
    return false;
  if (*End == '\0')
    return true;
  if (*End != ':')
    return false;
  const char *NBegin = End + 1;
  Inject.AtClose = std::strtoull(NBegin, &End, 10);
  return End != NBegin && *End == '\0' && Inject.AtClose > 0;
}

/// Parses "--at" position specs: "LINE:COL" with an optional leading
/// "FILE:" prefix (ignored; the command already names the file).
bool parseAt(const std::string &Spec, LineColumn &LC) {
  size_t Colon2 = Spec.rfind(':');
  if (Colon2 == std::string::npos || Colon2 == 0 || Colon2 + 1 >= Spec.size())
    return false;
  size_t Colon1 = Spec.rfind(':', Colon2 - 1);
  size_t LineBegin = Colon1 == std::string::npos ? 0 : Colon1 + 1;
  char *End = nullptr;
  LC.Line = std::strtoul(Spec.c_str() + LineBegin, &End, 10);
  if (End != Spec.c_str() + Colon2)
    return false;
  LC.Column = std::strtoul(Spec.c_str() + Colon2 + 1, &End, 10);
  if (End != Spec.c_str() + Spec.size())
    return false;
  return LC.Line > 0;
}

/// `eal timeline <recording>`: replay an eal-rec-v1 recording
/// (docs/RECORDER.md) into occupancy curves, lifetime ribbons, and
/// phase/GC bands. Exits 1 when the recording's event replay fails to
/// reconcile with the footer counters.
int runTimeline(int argc, char **argv) {
  std::string RecPath = argv[2];
  std::string JsonPath;
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(std::strlen("--json="));
    else
      return usage();
  }
  obs::rec::Timeline T;
  std::string Err;
  if (!T.load(RecPath, &Err)) {
    std::cerr << "eal: error: " << Err << "\n";
    return 1;
  }
  bool Ok = true;
  if (!JsonPath.empty())
    Ok = writeTextFile(JsonPath, T.toJson());
  std::cout << T.renderText();
  std::string Why;
  if (!T.reconciles(&Why)) {
    std::cerr << "eal: error: recording does not reconcile: " << Why << "\n";
    return 1;
  }
  return Ok ? 0 : 1;
}

/// `eal profile`: run the program on both engines under the profiler and
/// join the two runs with the optimizer's plan into one report. The
/// parser and optimizer are deterministic, so both runs assign the same
/// node ids and the site/frames tables line up.
int runProfile(const std::string &Source, PipelineOptions Options,
               const std::string &ProfileJsonPath,
               const std::string &FoldedPath, bool TimePhases) {
  prof::Profiler TreeProf;
  prof::Profiler VmProf;

  Options.Engine = ExecutionEngine::TreeWalker;
  Options.Obs.Profile = &TreeProf;
  PipelineResult R1 = runPipeline(Source, Options);

  Options.Engine = ExecutionEngine::Bytecode;
  Options.Obs.Profile = &VmProf;
  Options.RunLint = false; // findings carry over from the first run
  PipelineResult R2 = runPipeline(Source, Options);

  bool ExportOk = reportObsErrors(R1) && reportObsErrors(R2);

  if (!R1.Optimized) { // front-end failure: nothing to profile
    std::cerr << R1.diagnostics();
    return 1;
  }

  std::vector<prof::EngineProfile> Engines(2);
  Engines[0].Name = "tree";
  Engines[0].P = &TreeProf;
  Engines[0].Success = R1.Success;
  Engines[1].Name = "vm";
  Engines[1].P = &VmProf;
  Engines[1].Success = R2.Success;
  if (R2.Code)
    for (const Proto &P : R2.Code->Protos)
      Engines[1].FrameNames.push_back(P.Name);
  for (unsigned I = 0; I != NumOpcodes; ++I)
    Engines[1].OpcodeNames.push_back(opcodeName(static_cast<Opcode>(I)));

  prof::ProfileReport Report(*R1.Ast, *R1.SM, R1.Optimized->Root,
                             R1.Optimized->Plan, R1.Optimized->Reuse,
                             R1.Check ? &R1.Check->Findings : nullptr,
                             std::move(Engines));

  if (!ProfileJsonPath.empty())
    ExportOk = writeTextFile(ProfileJsonPath, Report.toJson()) && ExportOk;
  if (!FoldedPath.empty())
    ExportOk = writeTextFile(FoldedPath, Report.folded()) && ExportOk;

  std::cout << Report.renderSummary();
  if (R1.Success && R2.Success)
    std::cout << "value: " << R1.RenderedValue << "\n";
  if (TimePhases) {
    std::cout << '\n';
    printPhaseTimes(R2);
  }

  if (!R1.Success || !R2.Success) {
    std::cerr << R1.diagnostics() << R2.diagnostics();
    return 1;
  }
  return ExportOk ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  std::string Command = argv[1];
  std::string Path = argv[2];
  if (Command == "timeline")
    return runTimeline(argc, argv);
  if (Command != "analyze" && Command != "optimize" && Command != "run" &&
      Command != "disasm" && Command != "report" && Command != "check" &&
      Command != "profile" && Command != "explain" && Command != "live" &&
      Command != "spec")
    return usage();

  PipelineOptions Options;
  Options.RunProgram = Command == "run" || Command == "report" ||
                       Command == "profile" || Command == "spec";
  Options.Spec.Enable = Command == "spec";
  Options.CompileBytecode = Command == "disasm";
  Options.RunLint = Command == "check" || Command == "profile";
  Options.RunExplain = Command == "explain";
  Options.RunLive = Command == "live";
  Options.Obs.Command = Command;
  std::string CheckJsonPath, ProfileJsonPath, FoldedPath;
  std::string AtSpec, ExplainJsonPath, DotPath, LiveJsonPath, SpecJsonPath;
  bool TimePhases = false;
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--mono")
      Options.Mode = TypeInferenceMode::Monomorphic;
    else if (Arg == "--stdlib")
      Options.IncludeStdlib = true;
    else if (Arg == "--vm")
      Options.Engine = ExecutionEngine::Bytecode;
    else if (Arg == "--whole-object")
      Options.Optimize.Analysis = EscapeAnalysisMode::WholeObject;
    else if (Arg == "--no-reuse")
      Options.Optimize.EnableReuse = false;
    else if (Arg == "--no-stack")
      Options.Optimize.EnableStack = false;
    else if (Arg == "--no-region")
      Options.Optimize.EnableRegion = false;
    else if (Arg == "--validate")
      Options.Run.ValidateArenaFrees = true;
    else if (Arg == "--heap" && I + 1 < argc)
      Options.Run.HeapCapacity = std::strtoul(argv[++I], nullptr, 10);
    else if (Arg.rfind("--trace=", 0) == 0)
      Options.Obs.TracePath = Arg.substr(std::strlen("--trace="));
    else if (Arg.rfind("--stats-json=", 0) == 0)
      Options.Obs.StatsJsonPath = Arg.substr(std::strlen("--stats-json="));
    else if (Arg == "--time-phases")
      TimePhases = true;
    else if (Arg.rfind("--record=", 0) == 0)
      Options.Obs.RecordPath = Arg.substr(std::strlen("--record="));
    else if (Arg.rfind("--record-binary=", 0) == 0) {
      Options.Obs.RecordPath = Arg.substr(std::strlen("--record-binary="));
      Options.Obs.RecordBinary = true;
    } else if (Arg.rfind("--rec-dump=", 0) == 0)
      Options.Obs.RecDumpPath = Arg.substr(std::strlen("--rec-dump="));
    else if (Arg == "--check")
      Options.RunLint = true;
    else if (Arg == "--oracle")
      Options.RunOracle = true;
    else if (Arg == "--live")
      Options.RunLive = true;
    else if (Arg == "--live-oracle")
      Options.RunLiveOracle = true;
    else if (Arg == "--live-gc") {
      Options.LiveGcPrune = true;
      Options.RunLive = true;
    } else if (Arg.rfind("--live-json=", 0) == 0) {
      LiveJsonPath = Arg.substr(std::strlen("--live-json="));
      Options.RunLive = true;
    } else if (Arg.rfind("--check-json=", 0) == 0) {
      CheckJsonPath = Arg.substr(std::strlen("--check-json="));
      Options.RunLint = true;
    } else if (Arg.rfind("--profile-json=", 0) == 0 && Command == "profile")
      ProfileJsonPath = Arg.substr(std::strlen("--profile-json="));
    else if (Arg.rfind("--folded=", 0) == 0 && Command == "profile")
      FoldedPath = Arg.substr(std::strlen("--folded="));
    else if (Arg.rfind("--at=", 0) == 0 && Command == "explain")
      AtSpec = Arg.substr(std::strlen("--at="));
    else if (Arg.rfind("--explain-json=", 0) == 0 && Command != "profile") {
      ExplainJsonPath = Arg.substr(std::strlen("--explain-json="));
      Options.RunExplain = true;
    } else if (Arg.rfind("--dot=", 0) == 0 && Command != "profile") {
      DotPath = Arg.substr(std::strlen("--dot="));
      Options.RunExplain = true;
    } else if (Arg == "--spec")
      Options.Spec.Enable = true;
    else if (Arg.rfind("--spec-inject-deopt=", 0) == 0) {
      std::string Spec = Arg.substr(std::strlen("--spec-inject-deopt="));
      if (!parseInjectSpec(Spec, Options.Spec.Inject)) {
        std::cerr << "eal: error: malformed --spec-inject-deopt '" << Spec
                  << "' (expected SITE[:N] or all)\n";
        return 2;
      }
      Options.Spec.Enable = true;
    } else if (Arg.rfind("--spec-cold-max=", 0) == 0)
      Options.Spec.ColdMaxEntries =
          std::strtoull(Arg.c_str() + std::strlen("--spec-cold-max="),
                        nullptr, 10);
    else if (Arg.rfind("--spec-hot-min=", 0) == 0)
      Options.Spec.HotMinAllocs =
          std::strtoull(Arg.c_str() + std::strlen("--spec-hot-min="),
                        nullptr, 10);
    else if (Arg.rfind("--spec-json=", 0) == 0) {
      SpecJsonPath = Arg.substr(std::strlen("--spec-json="));
      Options.Spec.Enable = true;
    } else
      return usage();
  }

  std::string Source;
  if (!readSource(Path, Source))
    return 1;
  Options.SourceName = Path == "-" ? "<stdin>" : Path;

  if (Command == "profile")
    return runProfile(Source, std::move(Options), ProfileJsonPath, FoldedPath,
                      TimePhases);

  PipelineResult R = runPipeline(Source, Options);
  // The pipeline itself exports traces and stats (even on failure: a
  // trace of a failed run is exactly what one wants for debugging it);
  // surface any export errors here.
  bool ExportOk = reportObsErrors(R);
  if (!ExplainJsonPath.empty()) {
    if (R.Explain)
      ExportOk = writeTextFile(ExplainJsonPath,
                               R.Explain->toJson(*R.SM, Command, R.Success)) &&
                 ExportOk;
    else {
      std::cerr << "eal: error: cannot write '" << ExplainJsonPath << "'\n";
      ExportOk = false;
    }
  }
  if (!DotPath.empty()) {
    if (R.Explain)
      ExportOk = writeTextFile(DotPath, R.Explain->toDot()) && ExportOk;
    else {
      std::cerr << "eal: error: cannot write '" << DotPath << "'\n";
      ExportOk = false;
    }
  }
  if (!LiveJsonPath.empty()) {
    if (R.Live)
      ExportOk =
          writeTextFile(LiveJsonPath,
                        R.Live->toJson(*R.Ast, *R.SM, Command, R.Success)) &&
          ExportOk;
    else {
      std::cerr << "eal: error: cannot write '" << LiveJsonPath << "'\n";
      ExportOk = false;
    }
  }
  if (!SpecJsonPath.empty()) {
    if (R.SpecPlan)
      ExportOk = writeTextFile(SpecJsonPath,
                               spec::specPlanToJson(*R.SpecPlan,
                                                    R.SpecRT.get(), *R.Ast,
                                                    *R.SM)) &&
                 ExportOk;
    else {
      std::cerr << "eal: error: cannot write '" << SpecJsonPath << "'\n";
      ExportOk = false;
    }
  }
  if (!CheckJsonPath.empty()) {
    std::ofstream Out(CheckJsonPath);
    if (Out && R.Check)
      Out << R.Check->toJson(*R.SM, Command, R.Success);
    if (!Out || !R.Check) {
      std::cerr << "eal: error: cannot write '" << CheckJsonPath << "'\n";
      ExportOk = false;
    }
  }

  if (!R.Success) {
    if (R.Check)
      std::cerr << R.Check->render(*R.SM);
    std::cerr << R.diagnostics();
    return 1;
  }

  if (Command == "analyze" || Command == "report")
    printAnalysis(R);
  if (Command == "disasm")
    std::cout << disassemble(*R.Code);
  if (Command == "optimize" || Command == "report") {
    if (Command == "report")
      std::cout << '\n';
    printOptimization(R);
  }
  if (Command == "run" || Command == "report") {
    if (Command == "report")
      std::cout << '\n';
    printRun(R);
  }
  if (Command == "explain" && R.Explain) {
    if (AtSpec.empty()) {
      std::cout << R.Explain->renderText(*R.SM);
    } else {
      LineColumn LC;
      if (!parseAt(AtSpec, LC)) {
        std::cerr << "eal: error: malformed --at '" << AtSpec
                  << "' (expected [FILE:]LINE:COL)\n";
        return 2;
      }
      auto Selected = R.Explain->chainsAt(*R.SM, LC);
      if (Selected.empty()) {
        std::cerr << "eal: error: no allocation site at '" << AtSpec
                  << "'\n";
        return 1;
      }
      explain::ExplainReport Sub;
      Sub.Recorder = R.Explain->Recorder;
      for (const explain::BlameChain *C : Selected)
        Sub.Chains.push_back(*C);
      std::cout << Sub.renderText(*R.SM);
    }
  }
  if (Command == "live" && R.Live)
    std::cout << R.Live->render(*R.Ast, *R.SM);
  if (R.SpecPlan && (Command == "spec" || R.SpecRT))
    std::cout << spec::renderSpecReport(*R.SpecPlan, R.SpecRT.get(), *R.Ast,
                                        *R.SM);
  if (R.Check) {
    if (Command != "check")
      std::cout << '\n';
    std::cout << R.Check->render(*R.SM);
  }
  if (R.LiveOracle) {
    std::cout << '\n' << R.LiveOracle->report().render(*R.SM);
    // The dynamic ground truth next to the static demands: when each
    // site's data was last read, in AllocSeq units.
    const auto &Last = R.LiveOracle->lastTouchBySite();
    if (R.Live && !Last.empty()) {
      std::cout << "last touch by site (alloc-seq units):\n";
      for (const live::SiteLive &S : R.Live->Sites) {
        auto It = Last.find(S.Site->id());
        if (It == Last.end())
          continue;
        LineColumn LC = R.SM->lineColumn(S.Site->loc());
        std::cout << "  site " << S.Site->id() << " at " << LC.Line << ':'
                  << LC.Column << ": seq " << It->second
                  << " (static demand " << S.Dem.str() << ")\n";
      }
    }
  }
  if (TimePhases) {
    std::cout << '\n';
    printPhaseTimes(R);
  }
  if (R.Check && (R.Check->count(check::FindingSeverity::Error) > 0 ||
                  R.Check->hasViolations()))
    return 1;
  if (R.LiveOracle && !R.LiveOracle->report().Violations.empty())
    return 1;
  return ExportOk ? 0 : 1;
}

#!/usr/bin/env python3
"""Convert an eal-rec-v1 recording into viewer-ready derived views.

`eal run FILE --record=OUT.rec` (docs/RECORDER.md) captures the flight
recorder's event feed; `eal timeline` reconstructs it numerically.
This tool renders the same recording for standard profiling UIs:

  rec2trace.py REC -o trace.json        Chrome trace_event JSON
                                        (chrome://tracing, Perfetto):
                                        phase and GC spans per ring,
                                        live-cell counter tracks by
                                        storage class, instants for
                                        deopts/refutations/heap growth
  rec2trace.py REC --folded -o out.txt  collapsed stacks ("a;b;gc N",
                                        self-time in microseconds),
                                        ready for flamegraph.pl or
                                        speedscope

Reads both NDJSON and binary recordings.  Only the Python standard
library is used.
"""

import json
import sys

# The checker owns the binary record layout; reuse it so the two can
# never drift apart.
from check_rec_json import RECORD, SENTINEL_KIND

MAX_COUNTER_POINTS = 4096

CLASS_NAMES = ("heap", "stack", "region")


def read_recording(path):
    """Returns (header, events, footer); raises ValueError on malformed
    input (check_rec_json.py is the validator; this is just a loader)."""
    with open(path, "rb") as f:
        blob = f.read()
    newline = blob.find(b"\n")
    if newline < 0:
        raise ValueError("missing header line")
    header = json.loads(blob[:newline].decode("utf-8", "replace"))
    body = blob[newline + 1:]
    events = []
    footer = None
    if header.get("format") == "binary":
        offset = 0
        while offset + RECORD.size <= len(body):
            t, a, b, c, kind, tid = RECORD.unpack_from(body, offset)
            offset += RECORD.size
            if kind == SENTINEL_KIND:
                break
            events.append({"t": t, "tid": tid, "k": kind, "a": a, "b": b,
                           "c": c})
        tail = body[offset:].decode("utf-8", "replace").splitlines()
        if tail:
            footer = json.loads(tail[0])
    else:
        for line in body.decode("utf-8", "replace").splitlines():
            if not line.strip():
                continue
            obj = json.loads(line)
            if "footer" in obj:
                footer = obj
                break
            events.append(obj)
    return header, events, footer


class NameTable:
    def __init__(self, header, footer):
        self.kinds = header.get("kinds") or []
        self.names = (footer or {}).get("names") or []

    def kind(self, k):
        return self.kinds[k] if k < len(self.kinds) else "kind#%d" % k

    def name(self, a):
        return self.names[a] if a < len(self.names) else "name#%d" % a


def to_chrome_trace(header, events, footer):
    nt = NameTable(header, footer)
    out = []

    def span(ph, name, ev, cat, args=None):
        rec = {"ph": ph, "name": name, "cat": cat, "pid": 1,
               "tid": ev["tid"], "ts": ev["t"]}
        if args:
            rec["args"] = args
        out.append(rec)

    # Live-cell counters, stride-compacted like Timeline::replay so a
    # million-allocation recording stays loadable.
    live = [0, 0, 0]
    points = []

    def point(t):
        points.append((t, tuple(live)))

    for ev in events:
        kind = nt.kind(ev["k"])
        if kind == "run.begin":
            span("B", "run %s (%s)" % (nt.name(ev["a"]), nt.name(ev["b"])),
                 ev, "run")
        elif kind == "run.end":
            span("E", "run", ev, "run",
                 {"success": bool(ev["a"])})
        elif kind == "phase.begin":
            span("B", nt.name(ev["a"]), ev, "phase")
        elif kind == "phase.end":
            span("E", nt.name(ev["a"]), ev, "phase")
        elif kind == "gc.begin":
            span("B", "gc", ev, "gc",
                 {"live_before": ev["a"], "capacity": ev["b"]})
        elif kind == "gc.end":
            span("E", "gc", ev, "gc",
                 {"marked": ev["a"], "swept": ev["b"], "live_after": ev["c"]})
        elif kind == "cell.birth":
            cls = ev["c"] & 0xFF
            if cls < 3:
                live[cls] += 1
                point(ev["t"])
        elif kind == "cell.death":
            cls = ev["c"] & 0xFF
            if cls < 3 and live[cls] > 0:
                live[cls] -= 1
                point(ev["t"])
        elif kind == "cell.migrate":
            cls = ev["c"] & 0xFF
            if cls < 3 and live[cls] > 0:
                live[cls] -= 1
            live[0] += 1
            point(ev["t"])
        elif kind in ("spec.deopt", "oracle.refuted", "live.refuted",
                      "dump.trigger", "heap.grow", "arena.open",
                      "arena.free"):
            label = kind
            if kind == "spec.deopt":
                label = "spec.deopt (%s)" % nt.name(ev["a"])
            elif kind == "dump.trigger":
                label = "dump.trigger (%s)" % nt.name(ev["a"])
            elif kind in ("oracle.refuted", "live.refuted"):
                label = "%s site %d (%s)" % (kind, ev["a"],
                                             nt.name(ev["b"]))
            rec = {"ph": "i", "name": label, "cat": "mark", "pid": 1,
                   "tid": ev["tid"], "ts": ev["t"], "s": "g"}
            out.append(rec)

    stride = max(1, len(points) // MAX_COUNTER_POINTS)
    for i, (t, vals) in enumerate(points):
        if i % stride and i != len(points) - 1:
            continue
        out.append({"ph": "C", "name": "live cells", "pid": 1, "ts": t,
                    "args": dict(zip(CLASS_NAMES, vals))})
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def to_folded(header, events, footer):
    """Collapsed self-time stacks from the phase/GC span nesting, one
    stack per line weighted in microseconds."""
    nt = NameTable(header, footer)
    totals = {}
    stacks = {}  # tid -> [[name, start, child_us], ...]

    def open_frame(ev, name):
        stacks.setdefault(ev["tid"], []).append([name, ev["t"], 0])

    def close_frame(ev, name):
        stack = stacks.get(ev["tid"]) or []
        # Tolerate truncated recordings (a dump mid-phase): unwind to
        # the matching frame if it is there at all.
        while stack:
            frame = stack.pop()
            if frame[0] == name or name is None:
                elapsed = max(0, ev["t"] - frame[1])
                self_us = max(0, elapsed - frame[2])
                path = ";".join(f[0] for f in stack) or "<root>"
                key = path + ";" + frame[0] if stack else frame[0]
                totals[key] = totals.get(key, 0) + self_us
                if stack:
                    stack[-1][2] += elapsed
                if frame[0] == name or name is None:
                    return

    for ev in events:
        kind = nt.kind(ev["k"])
        if kind == "phase.begin":
            open_frame(ev, nt.name(ev["a"]))
        elif kind == "phase.end":
            close_frame(ev, nt.name(ev["a"]))
        elif kind == "gc.begin":
            open_frame(ev, "gc")
        elif kind == "gc.end":
            close_frame(ev, "gc")

    lines = ["%s %d" % (key, us) for key, us in sorted(totals.items())
             if us > 0]
    return "\n".join(lines) + ("\n" if lines else "")


def main(argv):
    rec_path = None
    out_path = None
    folded = False
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--folded":
            folded = True
        elif arg == "-o":
            i += 1
            if i >= len(argv):
                print(__doc__)
                return 2
            out_path = argv[i]
        elif rec_path is None:
            rec_path = arg
        else:
            print(__doc__)
            return 2
        i += 1
    if rec_path is None:
        print(__doc__)
        return 2

    try:
        header, events, footer = read_recording(rec_path)
    except (OSError, ValueError) as e:
        print("rec2trace: error: %s: %s" % (rec_path, e), file=sys.stderr)
        return 1
    if header.get("schema") != "eal-rec-v1":
        print("rec2trace: error: %s: not an eal-rec-v1 recording"
              % rec_path, file=sys.stderr)
        return 1

    if folded:
        text = to_folded(header, events, footer)
    else:
        text = json.dumps(to_chrome_trace(header, events, footer),
                          indent=1) + "\n"
    if out_path:
        with open(out_path, "w") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

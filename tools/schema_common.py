"""Shared plumbing for the eal JSON-schema checkers (tools/check_*_json.py).

Every checker is the executable definition of one eal-*-v1 schema and
follows the same shape: a per-file ``check_file`` built from small
``check_*`` helpers, a path-list validator printing ``ok``/``FAIL``
lines, a ``--self-test`` mode that mutates a known-good document and
asserts the validator's verdict flips, and a tiny argv dispatcher.
This module owns that shape so the checkers hold only their schema's
actual invariants.

Only the Python standard library is used.
"""

import json
import os
import tempfile


def fail(errors, path, message):
    errors.append("%s: %s" % (path, message))


def is_count(value):
    """A non-negative integer (bools are ints in Python; they don't count)."""
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_document(path, schema):
    """Reads ``path`` and runs the checks every schema shares: readable,
    valid JSON, object at top level, correct ``schema`` tag.

    Returns ``(doc, errors)``; ``doc`` is None when the failure is fatal
    (the caller has nothing to inspect) and the non-empty ``errors``
    list already explains why.
    """
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        return None, ["%s: cannot read: %s" % (path, e)]
    except ValueError as e:
        return None, ["%s: not valid JSON: %s" % (path, e)]
    if not isinstance(doc, dict):
        return None, ["%s: top level is not an object" % path]
    if doc.get("schema") != schema:
        fail(errors, path, "'schema' is %r, expected %r"
             % (doc.get("schema"), schema))
    return doc, errors


def validate(paths, check_file):
    """Validates each path with ``check_file``; prints one line per file."""
    ok = True
    for path in paths:
        errors = check_file(path)
        if errors:
            ok = False
            for e in errors:
                print("FAIL %s" % e)
        else:
            print("ok   %s" % path)
    return 0 if ok else 1


def mutator(good):
    """Returns ``broken(mutate)``: a deep copy of ``good`` with one
    mutation applied -- the self-test's way of producing each invalid
    (or differently-valid) variant without disturbing the original."""
    def broken(mutate):
        doc = json.loads(json.dumps(good))
        mutate(doc)
        return doc
    return broken


def run_self_test(cases, check_file, prefix, filename="case.json"):
    """Runs ``(label, doc, expect_ok)`` cases through ``check_file`` via
    temp files, plus the malformed-JSON rejection every checker needs.
    Returns a process exit status."""
    failures = 0
    with tempfile.TemporaryDirectory(prefix=prefix) as tmp:
        for label, doc, expect_ok in cases:
            path = os.path.join(tmp, filename)
            with open(path, "w") as f:
                json.dump(doc, f)
            got_ok = not check_file(path)
            status = "ok  " if got_ok == expect_ok else "FAIL"
            if got_ok != expect_ok:
                failures += 1
            print("%s self-test: %s (valid=%s, expected %s)"
                  % (status, label, got_ok, expect_ok))
        path = os.path.join(tmp, "bad.json")
        with open(path, "w") as f:
            f.write("{ not json")
        if check_file(path):
            print("ok   self-test: malformed JSON rejected")
        else:
            print("FAIL self-test: malformed JSON accepted")
            failures += 1
    return 0 if failures == 0 else 1


def dispatch(argv, module_doc, check_file, self_test):
    """The standard argv shape: ``--self-test`` or FILE [FILE...]."""
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(module_doc)
        return 2
    return validate(argv[1:], check_file)
